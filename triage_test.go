package cleansel_test

import (
	"context"
	"errors"
	"testing"

	cleansel "github.com/factcheck/cleansel"
	"github.com/factcheck/cleansel/internal/datasets"
	"github.com/factcheck/cleansel/internal/expt"
	"github.com/factcheck/cleansel/internal/parallel"
)

// streamFixture returns a shared dataset and a claim stream with
// renamed duplicates (arrivals > families).
func streamFixture(arrivals, families int) (*cleansel.DB, []*cleansel.PerturbationSet) {
	db, stream := expt.ClaimStream(datasets.UR, 24, 4, arrivals, families, 7)
	sets := make([]*cleansel.PerturbationSet, len(stream))
	for i, sc := range stream {
		sets[i] = sc.Set
	}
	return db, sets
}

func mustReport(t *testing.T, db *cleansel.DB, set *cleansel.PerturbationSet) cleansel.QualityReport {
	t.Helper()
	rep, err := cleansel.AssessClaim(db, set)
	if err != nil {
		t.Fatalf("AssessClaim: %v", err)
	}
	return rep
}

// TestTriageBitIdenticalToStandaloneAssess pins the amortization
// contract end to end: every per-claim report out of a triage batch is
// bit-for-bit the report a standalone AssessClaim produces, at several
// worker counts.
func TestTriageBitIdenticalToStandaloneAssess(t *testing.T) {
	db, sets := streamFixture(9, 4)
	want := make([]cleansel.QualityReport, len(sets))
	for i, set := range sets {
		want[i] = mustReport(t, db, set)
	}
	for _, workers := range []string{"1", "2", "8"} {
		t.Setenv(parallel.EnvWorkers, workers)
		tc, err := cleansel.NewTriageContext(db)
		if err != nil {
			t.Fatal(err)
		}
		got, errs, err := tc.AssessClaims(context.Background(), sets)
		if err != nil {
			t.Fatalf("workers=%s: AssessClaims: %v", workers, err)
		}
		for i := range sets {
			if errs[i] != nil {
				t.Fatalf("workers=%s: claim %d errored: %v", workers, i, errs[i])
			}
			if got[i] != want[i] {
				t.Fatalf("workers=%s: claim %d: triage %+v != standalone %+v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestTriageSequentialMatchesBatch pins that one-at-a-time assessment
// through a TriageContext (cache progressively warm) equals the batch
// path and the cold path bitwise.
func TestTriageSequentialMatchesBatch(t *testing.T) {
	db, sets := streamFixture(6, 3)
	tc, err := cleansel.NewTriageContext(db)
	if err != nil {
		t.Fatal(err)
	}
	for i, set := range sets {
		got, err := tc.AssessClaim(context.Background(), set)
		if err != nil {
			t.Fatalf("claim %d: %v", i, err)
		}
		if want := mustReport(t, db, set); got != want {
			t.Fatalf("claim %d: sequential triage %+v != standalone %+v", i, got, want)
		}
	}
}

// TestTriageDeduplicatesRenamedClaims pins the batch dedup policy:
// signature-identical claims (names differ, everything else equal) are
// assessed once and all receive the identical report.
func TestTriageDeduplicatesRenamedClaims(t *testing.T) {
	db, sets := streamFixture(10, 2) // 5 renamed copies of each family
	tc, err := cleansel.NewTriageContext(db)
	if err != nil {
		t.Fatal(err)
	}
	reports, errs, err := tc.AssessClaims(context.Background(), sets)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sets {
		if errs[i] != nil {
			t.Fatalf("claim %d errored: %v", i, errs[i])
		}
		if j := i % 2; reports[i] != reports[j] {
			t.Fatalf("renamed duplicate %d diverged from representative %d", i, j)
		}
	}
}

// TestTriageMalformedClaimFailsAlone pins per-claim error isolation: a
// nil set yields an error entry while its batchmates assess normally.
func TestTriageMalformedClaimFailsAlone(t *testing.T) {
	db, sets := streamFixture(3, 3)
	sets[1] = nil
	tc, err := cleansel.NewTriageContext(db)
	if err != nil {
		t.Fatal(err)
	}
	reports, errs, err := tc.AssessClaims(context.Background(), sets)
	if err != nil {
		t.Fatal(err)
	}
	if errs[1] == nil {
		t.Fatal("nil set did not produce a per-claim error")
	}
	for _, i := range []int{0, 2} {
		if errs[i] != nil {
			t.Fatalf("healthy claim %d poisoned by batchmate: %v", i, errs[i])
		}
		if want := mustReport(t, db, sets[i]); reports[i] != want {
			t.Fatalf("claim %d: %+v != standalone %+v", i, reports[i], want)
		}
	}
}

// TestTriageCancellationDrains pins cooperative cancellation: a
// pre-cancelled context fails the whole batch with the cancel cause,
// and the call returns only after in-flight workers drain.
func TestTriageCancellationDrains(t *testing.T) {
	db, sets := streamFixture(8, 8)
	tc, err := cleansel.NewTriageContext(db)
	if err != nil {
		t.Fatal(err)
	}
	cause := errors.New("triage deadline")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(cause)
	if _, _, err := tc.AssessClaims(ctx, sets); !errors.Is(err, cause) {
		t.Fatalf("cancelled batch returned %v, want cause %v", err, cause)
	}
	// The context must still be usable for a fresh, uncancelled batch.
	if _, errs, err := tc.AssessClaims(context.Background(), sets); err != nil {
		t.Fatalf("post-cancel batch: %v", err)
	} else {
		for i, e := range errs {
			if e != nil {
				t.Fatalf("post-cancel claim %d: %v", i, e)
			}
		}
	}
}

// TestTriageSharedCacheActuallyShares pins that the Γ-anchored family
// structure produces cross-claim cache traffic (the amortization isn't
// vacuously "on").
func TestTriageSharedCacheActuallyShares(t *testing.T) {
	db, sets := streamFixture(4, 4) // four distinct families, no renames
	tc, err := cleansel.NewTriageContext(db)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := tc.AssessClaims(context.Background(), sets); err != nil {
		t.Fatal(err)
	}
	hits, _ := tc.SharedCacheStats()
	if hits == 0 {
		t.Fatal("distinct Γ-family claims produced zero shared-cache hits")
	}
}
