package cleansel

import (
	"context"
	"errors"

	"github.com/factcheck/cleansel/internal/core"
)

// TriageContext amortizes claim assessment over one database for
// claim-stream triage: the discretized view, current values, and a
// cross-claim expected-variance cache are compiled once and reused for
// every claim assessed through the context. Each claim's QualityReport
// is bit-identical to a standalone AssessClaim of the same claim — the
// reuse is exact, never approximate — regardless of batch composition,
// order, or worker count.
type TriageContext struct {
	tc *core.TriageContext
}

// NewTriageContext compiles the dataset-level assessment state. The
// database must be independent; normal value models are discretized
// with the package default (k=6), exactly as AssessClaim does.
func NewTriageContext(db *DB) (*TriageContext, error) {
	if db == nil {
		return nil, errors.New("cleansel: NewTriageContext needs a db")
	}
	tc, err := core.NewTriageContext(db, discretizationPoints)
	if err != nil {
		return nil, err
	}
	return &TriageContext{tc: tc}, nil
}

// AssessClaim assesses one claim through the shared state. Safe for
// concurrent use.
func (t *TriageContext) AssessClaim(ctx context.Context, set *PerturbationSet) (QualityReport, error) {
	if set == nil {
		return QualityReport{}, errors.New("cleansel: AssessClaim needs db and set")
	}
	rep, err := t.tc.Assess(ctx, set)
	if err != nil {
		return QualityReport{}, err
	}
	return QualityReport(rep), nil
}

// AssessClaims assesses a batch: signature-identical claims (renamed
// copies included) are assessed once, distinct claims fan out over the
// parallel worker pool, and overlapping claims share term/pair
// enumerations through the cross-claim cache. reports[i] is valid iff
// errs[i] == nil — one malformed claim fails alone without poisoning
// the batch. The error return is reserved for ctx cancellation, which
// drains in-flight workers before returning.
func (t *TriageContext) AssessClaims(ctx context.Context, sets []*PerturbationSet) (reports []QualityReport, errs []error, err error) {
	coreReps, errs, err := t.tc.AssessBatch(ctx, sets)
	if err != nil {
		return nil, nil, err
	}
	reports = make([]QualityReport, len(coreReps))
	for i, r := range coreReps {
		reports[i] = QualityReport(r)
	}
	return reports, errs, nil
}

// SharedCacheStats reports the cross-claim EV cache's lifetime
// hit/miss counts (observability only).
func (t *TriageContext) SharedCacheStats() (hits, misses uint64) { return t.tc.SharedStats() }
