package cleansel_test

import (
	"strings"
	"testing"

	cleansel "github.com/factcheck/cleansel"
)

func TestParseMeasure(t *testing.T) {
	cases := []struct {
		in      string
		want    cleansel.Measure
		wantErr bool
	}{
		{"fairness", cleansel.Fairness, false},
		{"FAIRNESS", cleansel.Fairness, false},
		{"Fairness", cleansel.Fairness, false},
		{"", cleansel.Fairness, false}, // empty defaults
		{"uniqueness", cleansel.Uniqueness, false},
		{"UniQueNess", cleansel.Uniqueness, false},
		{"robustness", cleansel.Robustness, false},
		{"bias", 0, true},      // the metric name, not the measure name
		{"fairness ", 0, true}, // no trimming
		{" fairness", 0, true},
		{"minvar", 0, true}, // a goal, not a measure
		{"fair", 0, true},
		{"fairnesss", 0, true},
		{"uniq", 0, true},
	}
	for _, c := range cases {
		got, err := cleansel.ParseMeasure(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseMeasure(%q) accepted as %v", c.in, got)
			} else if !strings.Contains(err.Error(), "unknown measure") {
				t.Errorf("ParseMeasure(%q) error not descriptive: %v", c.in, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseMeasure(%q): %v", c.in, err)
		} else if got != c.want {
			t.Errorf("ParseMeasure(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseGoal(t *testing.T) {
	cases := []struct {
		in      string
		want    cleansel.Goal
		wantErr bool
	}{
		{"minvar", cleansel.MinimizeUncertainty, false},
		{"MINVAR", cleansel.MinimizeUncertainty, false},
		{"MinVar", cleansel.MinimizeUncertainty, false},
		{"", cleansel.MinimizeUncertainty, false},
		{"maxpr", cleansel.MaximizeSurprise, false},
		{"MaxPr", cleansel.MaximizeSurprise, false},
		{"min-var", 0, true},
		{"minimize", 0, true},
		{"maxpr ", 0, true},
		{"fairness", 0, true}, // a measure, not a goal
		{"surprise", 0, true},
	}
	for _, c := range cases {
		got, err := cleansel.ParseGoal(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseGoal(%q) accepted as %v", c.in, got)
			} else if !strings.Contains(err.Error(), "unknown goal") {
				t.Errorf("ParseGoal(%q) error not descriptive: %v", c.in, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseGoal(%q): %v", c.in, err)
		} else if got != c.want {
			t.Errorf("ParseGoal(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseAlgorithm(t *testing.T) {
	cases := []struct {
		in      string
		want    cleansel.Algorithm
		wantErr bool
	}{
		{"greedy", cleansel.AlgoGreedy, false},
		{"GREEDY", cleansel.AlgoGreedy, false},
		{"", cleansel.AlgoGreedy, false},
		{"optimum", cleansel.AlgoOptimum, false},
		{"Optimum", cleansel.AlgoOptimum, false},
		{"best", cleansel.AlgoBest, false},
		{"naive", cleansel.AlgoNaive, false},
		{"random", cleansel.AlgoRandom, false},
		{"opt", 0, true},
		{"greedy ", 0, true},
		{"optimal", 0, true},
		{"brute", 0, true},
		{"minvar", 0, true},
	}
	for _, c := range cases {
		got, err := cleansel.ParseAlgorithm(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseAlgorithm(%q) accepted as %v", c.in, got)
			} else if !strings.Contains(err.Error(), "unknown algorithm") {
				t.Errorf("ParseAlgorithm(%q) error not descriptive: %v", c.in, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseAlgorithm(%q): %v", c.in, err)
		} else if got != c.want {
			t.Errorf("ParseAlgorithm(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// TestParseStringerRoundTrip pins that every named constant's String()
// parses back to itself, and that out-of-range values stringify to the
// diagnostic fallback instead of a real name.
func TestParseStringerRoundTrip(t *testing.T) {
	for _, m := range []cleansel.Measure{cleansel.Fairness, cleansel.Uniqueness, cleansel.Robustness} {
		got, err := cleansel.ParseMeasure(m.String())
		if err != nil || got != m {
			t.Errorf("measure %v does not round-trip: %v, %v", m, got, err)
		}
	}
	for _, g := range []cleansel.Goal{cleansel.MinimizeUncertainty, cleansel.MaximizeSurprise} {
		got, err := cleansel.ParseGoal(g.String())
		if err != nil || got != g {
			t.Errorf("goal %v does not round-trip: %v, %v", g, got, err)
		}
	}
	for _, a := range []cleansel.Algorithm{
		cleansel.AlgoGreedy, cleansel.AlgoOptimum, cleansel.AlgoBest, cleansel.AlgoNaive, cleansel.AlgoRandom,
	} {
		got, err := cleansel.ParseAlgorithm(a.String())
		if err != nil || got != a {
			t.Errorf("algorithm %v does not round-trip: %v, %v", a, got, err)
		}
	}
	if s := cleansel.Measure(99).String(); !strings.Contains(s, "99") {
		t.Errorf("out-of-range measure stringified to %q", s)
	}
	if _, err := cleansel.ParseMeasure(cleansel.Measure(99).String()); err == nil {
		t.Error("fallback measure name parsed back")
	}
}
