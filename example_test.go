package cleansel_test

import (
	"fmt"
	"log"

	cleansel "github.com/factcheck/cleansel"
)

// Example 5 of the paper: two uncertain values, current values (1, 1),
// and the claim X1 + X2. Minimizing uncertainty cleans X1; maximizing the
// chance of a counterargument (threshold 17/12, i.e. τ = 7/12) cleans X2.
func ExampleSelect() {
	db := cleansel.NewDB([]cleansel.Object{
		{Name: "x1", Current: 1, Cost: 1, Value: cleansel.UniformOver([]float64{0, 0.5, 1, 1.5, 2})},
		{Name: "x2", Current: 1, Cost: 1, Value: cleansel.UniformOver([]float64{1.0 / 3, 1, 5.0 / 3})},
	})
	orig := cleansel.NewClaim("sum", 0, map[int]float64{0: 1, 1: 1})
	set, err := cleansel.NewPerturbationSet(orig, cleansel.HigherIsStronger,
		orig.Eval(db.Currents()), []cleansel.Perturbed{{Claim: orig, Sensibility: 1}})
	if err != nil {
		log.Fatal(err)
	}

	minvar, err := cleansel.Select(cleansel.Task{
		DB: db, Claims: set,
		Measure: cleansel.Fairness, Goal: cleansel.MinimizeUncertainty,
		Algorithm: cleansel.AlgoOptimum, Budget: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	maxpr, err := cleansel.Select(cleansel.Task{
		DB: db, Claims: set,
		Measure: cleansel.Fairness, Goal: cleansel.MaximizeSurprise,
		Budget: 1, Tau: 7.0 / 12.0,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("MinVar cleans:", minvar.Chosen)
	fmt.Println("MaxPr cleans: ", maxpr.Chosen)
	fmt.Printf("MaxPr counter probability: %.3f\n", maxpr.After)
	// Output:
	// MinVar cleans: [x1]
	// MaxPr cleans:  [x2]
	// MaxPr counter probability: 0.333
}

// Assessing Example 2's crime claim: the year-over-year increase of 305
// is technically above the asserted 300, but context weakens it.
func ExampleAssessClaim() {
	counts := []float64{9010, 9275, 9300, 9125, 9430}
	objs := make([]cleansel.Object, len(counts))
	for i, c := range counts {
		objs[i] = cleansel.Object{
			Name: fmt.Sprintf("y%d", 2014+i), Current: c, Cost: 1,
			Value: cleansel.UniformOver([]float64{c - 100, c, c + 100}),
		}
	}
	db := cleansel.NewDB(objs)
	orig := cleansel.WindowComparison("2018-vs-2017", 3, 4, 1)
	var perturbs []cleansel.Perturbed
	for s := 0; s < 3; s++ {
		perturbs = append(perturbs, cleansel.Perturbed{
			Claim: cleansel.WindowComparison("cmp", s, s+1, 1), Sensibility: 1,
		})
	}
	set, err := cleansel.NewPerturbationSet(orig, cleansel.HigherIsStronger, 300, perturbs)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := cleansel.AssessClaim(db, set)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("claimed increase: %.0f\n", orig.Eval(db.Currents()))
	fmt.Printf("duplicity: %d of %d perturbations\n", rep.Duplicity, rep.Perturbations)
	fmt.Printf("bias: %.1f (negative = claim exaggerates vs context)\n", rep.Bias)
	// Output:
	// claimed increase: 305
	// duplicity: 0 of 3 perturbations
	// bias: -261.7 (negative = claim exaggerates vs context)
}

// Ranking objects by standalone benefit-per-cost for the uniqueness
// measure — the diagnostic behind the greedy's choices.
func ExampleRankObjects() {
	db := cleansel.NewDB([]cleansel.Object{
		{Name: "stable", Current: 10, Cost: 1, Value: cleansel.UniformOver([]float64{9, 10, 11})},
		{Name: "volatile", Current: 10, Cost: 1, Value: cleansel.UniformOver([]float64{2, 10, 18})},
	})
	orig := cleansel.WindowSum("orig", 0, 2)
	set, err := cleansel.NewPerturbationSet(orig, cleansel.LowerIsStronger, 20,
		[]cleansel.Perturbed{{Claim: orig, Sensibility: 1}})
	if err != nil {
		log.Fatal(err)
	}
	ranked, err := cleansel.RankObjects(db, set, cleansel.Uniqueness)
	if err != nil {
		log.Fatal(err)
	}
	for _, o := range ranked {
		fmt.Printf("%s: benefit %.3f\n", o.Name, o.Benefit)
	}
	// Output:
	// volatile: benefit 0.173
	// stable: benefit 0.025
}
