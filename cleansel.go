package cleansel

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/factcheck/cleansel/internal/claims"
	"github.com/factcheck/cleansel/internal/core"
	"github.com/factcheck/cleansel/internal/datasets"
	"github.com/factcheck/cleansel/internal/dist"
	"github.com/factcheck/cleansel/internal/ev"
	"github.com/factcheck/cleansel/internal/linalg"
	"github.com/factcheck/cleansel/internal/maxpr"
	"github.com/factcheck/cleansel/internal/model"
	"github.com/factcheck/cleansel/internal/obs"
	"github.com/factcheck/cleansel/internal/rel"
	"github.com/factcheck/cleansel/internal/rng"
)

// Re-exported model types: the uncertain database of §2.1.
type (
	// DB is an uncertain database: objects with current values, cleaning
	// costs, and error models.
	DB = model.DB
	// Object is one uncertain data item.
	Object = model.Object
	// Set is a subset of object IDs (the values chosen for cleaning).
	Set = model.Set
	// Value is the marginal law of an object's true value.
	Value = model.Value
	// Discrete is a finite-support distribution.
	Discrete = dist.Discrete
	// Normal is a normal error model.
	Normal = dist.Normal
	// Claim is a linear claim function over the database.
	Claim = claims.Claim
	// Perturbed is a perturbation of the original claim with sensibility.
	Perturbed = claims.Perturbed
	// PerturbationSet is the original claim plus its weighted perturbations.
	PerturbationSet = claims.Set
	// Direction tells which way a claim is strong.
	Direction = claims.Direction
	// Selector is a budgeted selection algorithm.
	Selector = core.Selector
	// Table is a relational view over the uncertain database whose
	// SUM/AVG aggregates compile to linear claims (§3.4).
	Table = rel.Table
	// Row is one tuple of a Table.
	Row = rel.Row
	// Pred is a row predicate over certain attributes.
	Pred = rel.Pred
)

// Claim strength directions.
const (
	// HigherIsStronger marks claims strengthened by larger query results.
	HigherIsStronger = claims.HigherIsStronger
	// LowerIsStronger marks claims strengthened by smaller query results.
	LowerIsStronger = claims.LowerIsStronger
)

// NewDB assembles a database and assigns object IDs.
func NewDB(objects []Object) *DB { return model.New(objects) }

// NewSet builds a canonical object subset.
func NewSet(ids ...int) Set { return model.NewSet(ids...) }

// NewDiscrete builds a validated finite distribution.
func NewDiscrete(values, probs []float64) (*Discrete, error) {
	return dist.NewDiscrete(values, probs)
}

// UniformOver builds the uniform distribution over values.
func UniformOver(values []float64) *Discrete { return dist.UniformOver(values) }

// PointMass builds the distribution concentrated at v.
func PointMass(v float64) *Discrete { return dist.PointMass(v) }

// NewNormal builds a normal error model.
func NewNormal(mu, sigma float64) (Normal, error) { return dist.NewNormal(mu, sigma) }

// Mixture pools conflicting source distributions for one value into a
// credibility-weighted opinion pool (§2.1 discussion).
func Mixture(dists []*Discrete, weights []float64) (*Discrete, error) {
	return dist.Mixture(dists, weights)
}

// FuseNormals resolves independent normal reports of the same quantity by
// precision weighting (§2.1 discussion).
func FuseNormals(reports []Normal) (Normal, error) { return dist.FuseNormals(reports) }

// NewClaim builds a linear claim function.
func NewClaim(name string, constant float64, coef map[int]float64) *Claim {
	return claims.NewClaim(name, constant, coef)
}

// WindowSum builds the claim Σ_{i=start}^{start+w-1} X_i.
func WindowSum(name string, start, w int) *Claim { return claims.WindowSum(name, start, w) }

// WindowComparison builds a window-aggregate-comparison claim (later
// window minus earlier window).
func WindowComparison(name string, earlierStart, laterStart, w int) *Claim {
	return claims.WindowComparison(name, earlierStart, laterStart, w)
}

// NewPerturbationSet assembles the original claim with its perturbations;
// sensibilities are normalized to sum to one.
func NewPerturbationSet(original *Claim, dir Direction, ref float64, perturbs []Perturbed) (*PerturbationSet, error) {
	return claims.NewSet(original, dir, ref, perturbs)
}

// SlidingComparisons generates back-to-back window-comparison
// perturbations with exponentially decaying sensibility.
func SlidingComparisons(namePrefix string, n, w, origStart int, lambda float64) []Perturbed {
	return claims.SlidingComparisons(namePrefix, n, w, origStart, lambda)
}

// NonOverlappingWindows generates disjoint window-sum perturbations.
func NonOverlappingWindows(namePrefix string, n, w, origStart int, lambda float64) []Perturbed {
	return claims.NonOverlappingWindows(namePrefix, n, w, origStart, lambda)
}

// SlidingWindows generates window-sum perturbations at every start.
func SlidingWindows(namePrefix string, n, w, origStart int, lambda float64) []Perturbed {
	return claims.SlidingWindows(namePrefix, n, w, origStart, lambda)
}

// Embedded datasets and synthetic generators (§4).
var (
	// Adoptions builds the NYC adoptions dataset (1989–2014).
	Adoptions = datasets.Adoptions
	// CDCFirearms builds the nonfatal firearm-injury dataset (2001–2017).
	CDCFirearms = datasets.CDCFirearms
	// CDCCauses builds the four-cause injury dataset (68 values).
	CDCCauses = datasets.CDCCauses
	// URx builds the uniform-random synthetic dataset.
	URx = datasets.URx
	// LNx builds the log-normal synthetic dataset.
	LNx = datasets.LNx
	// SMx builds the multimodal synthetic dataset.
	SMx = datasets.SMx
)

// NewTable builds a relational view over the database; its aggregates
// (Sum, Avg, WeightedSum) compile to claims, and rel.Diff/rel.Share
// combine them into comparison and share claims.
func NewTable(name string, db *DB, rows []Row) (*Table, error) {
	return rel.NewTable(name, db, rows)
}

// Relational predicate helpers, re-exported for Table queries.
var (
	// DimEq matches rows whose string dimension equals a value.
	DimEq = rel.DimEq
	// IntBetween matches rows whose integer dimension lies in a range.
	IntBetween = rel.IntBetween
	// PredAnd conjoins predicates.
	PredAnd = rel.And
	// PredOr disjoins predicates.
	PredOr = rel.Or
	// PredNot negates a predicate.
	PredNot = rel.Not
	// ClaimDiff builds the comparison claim a − b.
	ClaimDiff = rel.Diff
	// ClaimShare builds the share claim a − frac·b.
	ClaimShare = rel.Share
)

// WithDecayCovariance equips the database with the correlated error model
// of §4.5: Cov(i, j) = gamma^|j−i|·σ_i·σ_j. Neighbouring objects' errors
// co-move; the dependency fades with distance. gamma must lie in [0, 1).
func WithDecayCovariance(db *DB, gamma float64) error {
	if gamma < 0 || gamma >= 1 {
		return fmt.Errorf("cleansel: gamma %v outside [0, 1)", gamma)
	}
	n := db.N()
	sig := make([]float64, n)
	for i := 0; i < n; i++ {
		if v := db.Objects[i].Value.Variance(); v > 0 {
			sig[i] = math.Sqrt(v)
		}
	}
	cov := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d := j - i
			if d < 0 {
				d = -d
			}
			v := sig[i] * sig[j]
			for k := 0; k < d; k++ {
				v *= gamma
			}
			cov.Set(i, j, v)
		}
	}
	db.Cov = cov
	return nil
}

// Measure selects the claim-quality measure to optimize (§2.2).
type Measure int

// The three claim-quality measures.
const (
	// Fairness targets the bias measure (weighted mean relative strength).
	Fairness Measure = iota
	// Uniqueness targets duplicity (count of perturbations at least as
	// strong as the original claim).
	Uniqueness
	// Robustness targets fragility (weighted squared weakenings).
	Robustness
)

// String implements fmt.Stringer.
func (m Measure) String() string {
	switch m {
	case Fairness:
		return "fairness"
	case Uniqueness:
		return "uniqueness"
	case Robustness:
		return "robustness"
	}
	return fmt.Sprintf("measure(%d)", int(m))
}

// ParseMeasure maps a wire-format name ("fairness", "uniqueness",
// "robustness"; case-insensitive) to its Measure. The empty string
// defaults to Fairness.
func ParseMeasure(s string) (Measure, error) {
	switch strings.ToLower(s) {
	case "fairness", "":
		return Fairness, nil
	case "uniqueness":
		return Uniqueness, nil
	case "robustness":
		return Robustness, nil
	}
	return 0, fmt.Errorf("cleansel: unknown measure %q", s)
}

// Goal selects the optimization objective (§2.1).
type Goal int

// The two objectives of the paper.
const (
	// MinimizeUncertainty is MinVar: ascertain claim quality.
	MinimizeUncertainty Goal = iota
	// MaximizeSurprise is MaxPr: maximize the chance of countering.
	MaximizeSurprise
)

// String implements fmt.Stringer.
func (g Goal) String() string {
	switch g {
	case MinimizeUncertainty:
		return "minvar"
	case MaximizeSurprise:
		return "maxpr"
	}
	return fmt.Sprintf("goal(%d)", int(g))
}

// ParseGoal maps a wire-format name ("minvar", "maxpr";
// case-insensitive) to its Goal. The empty string defaults to
// MinimizeUncertainty.
func ParseGoal(s string) (Goal, error) {
	switch strings.ToLower(s) {
	case "minvar", "":
		return MinimizeUncertainty, nil
	case "maxpr":
		return MaximizeSurprise, nil
	}
	return 0, fmt.Errorf("cleansel: unknown goal %q", s)
}

// Algorithm selects the solver.
type Algorithm int

// Available solvers.
const (
	// AlgoGreedy is the objective-aware Algorithm 1 (GreedyMinVar or
	// GreedyMaxPr depending on the goal).
	AlgoGreedy Algorithm = iota
	// AlgoOptimum is the exact knapsack DP (modular objectives only).
	AlgoOptimum
	// AlgoBest is the submodular-optimization algorithm of Theorem 3.7.
	AlgoBest
	// AlgoNaive is the variance-ranked greedy baseline.
	AlgoNaive
	// AlgoRandom is the random baseline.
	AlgoRandom
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case AlgoGreedy:
		return "greedy"
	case AlgoOptimum:
		return "optimum"
	case AlgoBest:
		return "best"
	case AlgoNaive:
		return "naive"
	case AlgoRandom:
		return "random"
	}
	return fmt.Sprintf("algorithm(%d)", int(a))
}

// ParseAlgorithm maps a wire-format name ("greedy", "optimum", "best",
// "naive", "random"; case-insensitive) to its Algorithm. The empty
// string defaults to AlgoGreedy.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch strings.ToLower(s) {
	case "greedy", "":
		return AlgoGreedy, nil
	case "optimum":
		return AlgoOptimum, nil
	case "best":
		return AlgoBest, nil
	case "naive":
		return AlgoNaive, nil
	case "random":
		return AlgoRandom, nil
	}
	return 0, fmt.Errorf("cleansel: unknown algorithm %q", s)
}

// Task describes one selection problem.
type Task struct {
	DB     *DB
	Claims *PerturbationSet
	// Measure is the claim-quality measure; MaxPr requires Fairness.
	Measure Measure
	// Goal picks MinVar or MaxPr.
	Goal Goal
	// Algorithm picks the solver (default AlgoGreedy).
	Algorithm Algorithm
	// Budget is the absolute cleaning budget.
	Budget float64
	// Tau is the MaxPr surprise threshold (ignored for MinVar).
	Tau float64
	// Seed drives randomized components (AlgoRandom, Monte-Carlo
	// fallbacks).
	Seed uint64
}

// Result reports a selection.
type Result struct {
	// Set holds the chosen object IDs.
	Set Set
	// Chosen holds the chosen object names, in ID order.
	Chosen []string
	// CostSpent is the total cleaning cost of the chosen set.
	CostSpent float64
	// Before and After are the objective values with nothing cleaned and
	// with the chosen set cleaned: expected variance for MinVar, counter
	// probability for MaxPr.
	Before, After float64
}

// Select solves the task.
func Select(task Task) (Result, error) {
	return SelectContext(context.Background(), task)
}

// SelectContext solves the task under ctx: when the context is
// cancelled or times out, the solver stops cooperatively (between
// benefit evaluations) and returns the context's error. An uncancelled
// SelectContext returns exactly what Select returns. Solvers fan their
// per-object enumeration out over a bounded worker pool sized by
// GOMAXPROCS (override with CLEANSEL_WORKERS); results are
// bit-identical for every worker count.
func SelectContext(ctx context.Context, task Task) (Result, error) {
	if task.DB == nil || task.Claims == nil {
		return Result{}, errors.New("cleansel: task needs DB and Claims")
	}
	if err := task.DB.Validate(); err != nil {
		return Result{}, err
	}
	switch task.Goal {
	case MinimizeUncertainty:
		return selectMinVar(ctx, task)
	case MaximizeSurprise:
		return selectMaxPr(ctx, task)
	}
	return Result{}, fmt.Errorf("cleansel: unknown goal %d", task.Goal)
}

// discretizationPoints is the default equal-probability grid used when an
// exact discrete engine needs normal value models discretized (the §4.2
// convention is 6 for single-series CDC data).
const discretizationPoints = 6

// discreteView returns db itself when all values are discrete, or a copy
// with normal values replaced by their k-point discretizations.
func discreteView(db *DB) *DB {
	if _, err := db.Discretes(); err != nil {
		return db.Discretized(discretizationPoints)
	}
	return db
}

func selectMinVar(ctx context.Context, task Task) (Result, error) {
	db := task.DB
	var (
		sel    core.Selector
		engine ev.Engine
		err    error
	)
	switch task.Measure {
	case Fairness:
		bias := task.Claims.Bias()
		if db.Cov != nil {
			engine, err = ev.NewMVN(db, bias)
			if err != nil {
				return Result{}, err
			}
			sel, err = core.NewGreedyDep(db, bias)
		} else {
			engine, err = ev.NewModular(db, bias)
			if err != nil {
				return Result{}, err
			}
			switch task.Algorithm {
			case AlgoOptimum:
				sel, err = core.NewOptimumModular(db, bias, 0)
			case AlgoNaive:
				sel = &core.GreedyNaive{DB: db, Vars: bias.Vars()}
			case AlgoRandom:
				sel = &core.Random{DB: db, Seed: task.Seed}
			case AlgoBest:
				// The submodular machinery enumerates supports; run it on
				// the discretized view (the objective stays modular, so
				// the achieved EV is still reported exactly).
				sel, err = core.NewBest(discreteView(db), bias.AsGroupSum(), 0)
			default:
				sel, err = core.NewGreedyMinVarModular(db, bias)
			}
		}
	case Uniqueness, Robustness:
		if db.Cov != nil {
			return Result{}, errors.New("cleansel: correlated errors are only supported for the fairness measure")
		}
		work := discreteView(db)
		g := task.Claims.Dup()
		if task.Measure == Robustness {
			g = task.Claims.Frag()
		}
		ge, gerr := ev.NewGroupEngine(work, g)
		if gerr != nil {
			return Result{}, gerr
		}
		engine = ge
		switch task.Algorithm {
		case AlgoBest:
			sel, err = core.NewBest(work, g, 0)
		case AlgoNaive:
			sel = &core.GreedyNaive{DB: work, Vars: g.Vars()}
		case AlgoRandom:
			sel = &core.Random{DB: work, Seed: task.Seed}
		case AlgoOptimum:
			return Result{}, errors.New("cleansel: Optimum requires a modular objective; use Fairness or AlgoBest")
		default:
			sel, err = core.NewGreedyMinVarGroup(work, g)
		}
	default:
		return Result{}, fmt.Errorf("cleansel: unknown measure %v", task.Measure)
	}
	if err != nil {
		return Result{}, err
	}
	T, err := core.SelectWithContext(ctx, sel, task.Budget)
	if err != nil {
		return Result{}, err
	}
	before, err := ev.EVWithContext(ctx, engine, nil)
	if err != nil {
		return Result{}, err
	}
	after, err := ev.EVWithContext(ctx, engine, T)
	if err != nil {
		return Result{}, err
	}
	return buildResult(db, T, before, after), nil
}

func selectMaxPr(ctx context.Context, task Task) (Result, error) {
	if task.Measure != Fairness {
		return Result{}, errors.New("cleansel: MaximizeSurprise optimizes the fairness (bias) measure")
	}
	db := task.DB
	bias := task.Claims.Bias()
	var (
		eval maxpr.Evaluator
		err  error
	)
	switch {
	case db.Cov != nil:
		eval, err = maxpr.NewMVNAffine(db, bias, task.Tau, false)
	default:
		if _, ok := db.Normals(); ok {
			eval, err = maxpr.NewNormalAffine(db, bias, task.Tau)
		} else {
			// Mixed value models: discretize the normals so the exact
			// convolution path applies.
			var h *maxpr.Hybrid
			h, err = maxpr.NewHybrid(discreteView(db), bias, task.Tau, 0, 20000, rng.New(task.Seed^0x51ec7))
			if err == nil {
				// Write-only trace: exact/fallback route counts and
				// convolution work tick the request's recorder, if any.
				h.Observe(obs.FromContext(ctx))
				eval = maxpr.NewCached(h)
			}
		}
	}
	if err != nil {
		return Result{}, err
	}
	sel, err := core.NewGreedyMaxPr(db, eval)
	if err != nil {
		return Result{}, err
	}
	T, err := core.SelectWithContext(ctx, sel, task.Budget)
	if err != nil {
		return Result{}, err
	}
	return buildResult(db, T, eval.Prob(nil), eval.Prob(T)), nil
}

func buildResult(db *DB, T Set, before, after float64) Result {
	res := Result{Set: T, Before: before, After: after, CostSpent: T.Cost(db)}
	for _, o := range T {
		res.Chosen = append(res.Chosen, db.Objects[o].Name)
	}
	return res
}

// ObjectBenefit reports one object's standalone cleaning value for a
// measure: the drop in expected variance if it alone were cleaned.
type ObjectBenefit struct {
	ID      int
	Name    string
	Benefit float64
	Cost    float64
}

// RankObjects returns every object's standalone cleaning benefit for the
// measure, sorted by benefit-per-cost descending (ties by ID) — the
// ranking a fact-checker inspects before committing budget. For Fairness
// the benefits are the exact modular weights a_i²·Var[X_i]; for
// Uniqueness/Robustness they are the group engine's singleton deltas
// (normal value models are discretized first).
func RankObjects(db *DB, set *PerturbationSet, measure Measure) ([]ObjectBenefit, error) {
	return RankObjectsContext(context.Background(), db, set, measure)
}

// RankObjectsContext is RankObjects under ctx: the group engine's
// benefit pass runs on the parallel worker pool and stops with the
// context's error once ctx is done.
func RankObjectsContext(ctx context.Context, db *DB, set *PerturbationSet, measure Measure) ([]ObjectBenefit, error) {
	if db == nil || set == nil {
		return nil, errors.New("cleansel: RankObjects needs db and set")
	}
	var benefits []float64
	switch measure {
	case Fairness:
		eng, err := ev.NewModular(db, set.Bias())
		if err != nil {
			return nil, err
		}
		benefits = eng.Weights()
	case Uniqueness, Robustness:
		work := discreteView(db)
		g := set.Dup()
		if measure == Robustness {
			g = set.Frag()
		}
		eng, err := ev.NewGroupEngine(work, g)
		if err != nil {
			return nil, err
		}
		st, err := eng.NewStateCtx(ctx)
		if err != nil {
			return nil, err
		}
		benefits, err = st.SingletonBenefitsCtx(ctx)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("cleansel: unknown measure %v", measure)
	}
	out := make([]ObjectBenefit, db.N())
	for i := range out {
		out[i] = ObjectBenefit{
			ID:      i,
			Name:    db.Objects[i].Name,
			Benefit: benefits[i],
			Cost:    db.Objects[i].Cost,
		}
	}
	sort.SliceStable(out, func(a, b int) bool {
		ra := density(out[a].Benefit, out[a].Cost)
		rb := density(out[b].Benefit, out[b].Cost)
		if ra != rb {
			return ra > rb
		}
		return out[a].ID < out[b].ID
	})
	return out, nil
}

func density(benefit, cost float64) float64 {
	if cost == 0 {
		if benefit > 0 {
			return math.Inf(1)
		}
		return 0
	}
	return benefit / cost
}

// QualityReport summarizes a claim's quality measures at the current
// values together with their uncertainty (variance under the error
// model), the §2.2 diagnostics a fact-checker starts from.
type QualityReport struct {
	Bias          float64 // bias at current values (negative = exaggeration)
	BiasVariance  float64
	Duplicity     int // perturbations at least as strong as the claim
	DupVariance   float64
	Fragility     float64
	FragVariance  float64
	Perturbations int
}

// AssessClaim computes the quality report. The database must be
// independent; discrete value models are required for the uniqueness and
// robustness variances (normal models are discretized with k=6 first).
func AssessClaim(db *DB, set *PerturbationSet) (QualityReport, error) {
	return AssessClaimContext(context.Background(), db, set)
}

// AssessClaimContext is AssessClaim under ctx: the duplicity and
// fragility variance solves (the expensive enumerations) run on the
// parallel worker pool and stop with the context's error once ctx is
// done. It runs through a one-shot TriageContext, so a standalone
// assessment and a bulk-triage assessment of the same claim are the
// same code path — bit-identical by construction.
func AssessClaimContext(ctx context.Context, db *DB, set *PerturbationSet) (QualityReport, error) {
	if db == nil || set == nil {
		return QualityReport{}, errors.New("cleansel: AssessClaim needs db and set")
	}
	tc, err := NewTriageContext(db)
	if err != nil {
		return QualityReport{}, err
	}
	return tc.AssessClaim(ctx, set)
}
