// Package cleansel decides which uncertain values a fact-checker should
// clean under a cost budget, implementing
//
//	Sintos, Agarwal, Yang. "Selecting Data to Clean for Fact Checking:
//	Minimizing Uncertainty vs. Maximizing Surprise." (VLDB 2019)
//
// A claim is a (linear) query over a database of uncertain values. Its
// quality is assessed against a set of perturbations — nearby variants of
// the claim weighted by sensibility — through three measures: fairness
// (bias), uniqueness (duplicity), and robustness (fragility). Cleaning a
// value reveals its true realization at a cost. Two selection objectives
// compete:
//
//   - MinVar: minimize the expected variance remaining in a quality
//     measure after cleaning — ascertain the claim's quality.
//   - MaxPr: maximize the probability that cleaning shifts the measure
//     enough to expose a counterargument — counter the claim.
//
// The top-level API mirrors that workflow:
//
//	db := cleansel.NewDB([]cleansel.Object{...})
//	orig := cleansel.WindowComparison("claim", 0, 4, 4)
//	set, _ := cleansel.NewPerturbationSet(orig, cleansel.HigherIsStronger, ref, perturbs)
//	res, _ := cleansel.Select(cleansel.Task{
//	    DB: db, Claims: set,
//	    Measure: cleansel.Fairness, Goal: cleansel.MinimizeUncertainty,
//	    Algorithm: cleansel.AlgoGreedy, Budget: db.Budget(0.2),
//	})
//	fmt.Println(res.Chosen, res.Before, res.After)
//
// Select, RankObjects, and AssessClaim have context-aware variants
// (SelectContext, RankObjectsContext, AssessClaimContext) that cancel
// cooperatively when the context is done — the form a serving layer
// should call. Solvers fan their per-object enumeration out over a
// bounded worker pool sized by GOMAXPROCS (override with the
// CLEANSEL_WORKERS environment variable); results are bit-identical
// for every worker count.
//
// The embedded evaluation datasets (Adoptions, CDC-firearms, CDC-causes)
// and the paper's synthetic generators (URx, LNx, SMx) are exposed for
// experimentation, and cmd/repro regenerates every figure of the paper's
// evaluation section.
//
// Beyond the library, cmd/cleansel solves one selection problem from a
// JSON specification, and cmd/cleanseld serves the same wire format over
// HTTP/JSON (POST /v1/select, /v1/rank, /v1/assess, with uploaded
// datasets and an LRU result cache) for long-running deployments; see
// the README for endpoint documentation and curl examples.
package cleansel
