package cleansel_test

import (
	"math"
	"testing"

	cleansel "github.com/factcheck/cleansel"
)

// Example 2's crime database: five years of counts with the claim
// "crimes went up by more than 300 from 2017 to 2018".
func crimeDB(t *testing.T) *cleansel.DB {
	t.Helper()
	counts := []float64{9010, 9275, 9300, 9125, 9430}
	years := []string{"2014", "2015", "2016", "2017", "2018"}
	objs := make([]cleansel.Object, len(counts))
	for i, c := range counts {
		// Each count may be off by up to ~100 cases either way.
		d := cleansel.UniformOver([]float64{c - 100, c - 50, c, c + 50, c + 100})
		objs[i] = cleansel.Object{Name: "crimes/" + years[i], Current: c, Cost: 1, Value: d}
	}
	return cleansel.NewDB(objs)
}

func crimeSet(t *testing.T, db *cleansel.DB) *cleansel.PerturbationSet {
	t.Helper()
	orig := cleansel.WindowComparison("increase-2018", 3, 4, 1)
	perturbs := cleansel.SlidingComparisons("cmp", db.N(), 1, 3, 1.0)
	var filtered []cleansel.Perturbed
	for _, p := range perturbs {
		if p.Distance > 0 {
			filtered = append(filtered, p)
		}
	}
	set, err := cleansel.NewPerturbationSet(orig, cleansel.HigherIsStronger, 300, filtered)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestSelectMinVarUniqueness(t *testing.T) {
	db := crimeDB(t)
	set := crimeSet(t, db)
	res, err := cleansel.Select(cleansel.Task{
		DB: db, Claims: set,
		Measure:   cleansel.Uniqueness,
		Goal:      cleansel.MinimizeUncertainty,
		Algorithm: cleansel.AlgoGreedy,
		Budget:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Set) == 0 || res.CostSpent > 2 {
		t.Fatalf("bad selection: %+v", res)
	}
	if res.After > res.Before+1e-9 {
		t.Fatalf("uncertainty increased: %v -> %v", res.Before, res.After)
	}
	if len(res.Chosen) != len(res.Set) {
		t.Fatal("names missing")
	}
}

func TestSelectAlgorithmsAgreeOnObjective(t *testing.T) {
	db := crimeDB(t)
	set := crimeSet(t, db)
	for _, algo := range []cleansel.Algorithm{
		cleansel.AlgoGreedy, cleansel.AlgoBest, cleansel.AlgoNaive, cleansel.AlgoRandom,
	} {
		res, err := cleansel.Select(cleansel.Task{
			DB: db, Claims: set,
			Measure: cleansel.Uniqueness, Goal: cleansel.MinimizeUncertainty,
			Algorithm: algo, Budget: db.TotalCost(), Seed: 7,
		})
		if err != nil {
			t.Fatalf("algo %d: %v", algo, err)
		}
		// Full budget: everyone cleans everything relevant; uncertainty 0.
		if res.After > 1e-9 {
			t.Fatalf("algo %d left uncertainty %v at full budget", algo, res.After)
		}
	}
}

func TestSelectMinVarFairnessOptimum(t *testing.T) {
	db := crimeDB(t)
	set := crimeSet(t, db)
	res, err := cleansel.Select(cleansel.Task{
		DB: db, Claims: set,
		Measure: cleansel.Fairness, Goal: cleansel.MinimizeUncertainty,
		Algorithm: cleansel.AlgoOptimum, Budget: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := cleansel.Select(cleansel.Task{
		DB: db, Claims: set,
		Measure: cleansel.Fairness, Goal: cleansel.MinimizeUncertainty,
		Algorithm: cleansel.AlgoGreedy, Budget: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.After > greedy.After+1e-9 {
		t.Fatalf("Optimum (%v) worse than greedy (%v)", res.After, greedy.After)
	}
}

func TestSelectMaxPr(t *testing.T) {
	db := crimeDB(t)
	set := crimeSet(t, db)
	res, err := cleansel.Select(cleansel.Task{
		DB: db, Claims: set,
		Measure: cleansel.Fairness, Goal: cleansel.MaximizeSurprise,
		Budget: 2, Tau: 10, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Before != 0 {
		t.Fatalf("P(∅) = %v, want 0", res.Before)
	}
	if res.After < 0 || res.After > 1 {
		t.Fatalf("probability %v out of range", res.After)
	}
	// MaxPr on a non-fairness measure is rejected.
	if _, err := cleansel.Select(cleansel.Task{
		DB: db, Claims: set,
		Measure: cleansel.Uniqueness, Goal: cleansel.MaximizeSurprise, Budget: 2,
	}); err == nil {
		t.Fatal("MaxPr on uniqueness accepted")
	}
}

func TestSelectValidation(t *testing.T) {
	if _, err := cleansel.Select(cleansel.Task{}); err == nil {
		t.Fatal("empty task accepted")
	}
}

func TestAssessClaim(t *testing.T) {
	db := crimeDB(t)
	set := crimeSet(t, db)
	rep, err := cleansel.AssessClaim(db, set)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Perturbations != 3 {
		t.Fatalf("perturbations %d, want 3", rep.Perturbations)
	}
	// At current values: increases are 265, 25, −175 vs the asserted 300.
	// Every perturbation is weaker, so duplicity 0 and negative bias.
	if rep.Duplicity != 0 {
		t.Fatalf("duplicity %d, want 0", rep.Duplicity)
	}
	if rep.Bias >= 0 {
		t.Fatalf("bias %v, want negative (claim exaggerates vs context)", rep.Bias)
	}
	if rep.BiasVariance <= 0 || rep.DupVariance < 0 || rep.FragVariance < 0 {
		t.Fatalf("bad variances: %+v", rep)
	}
	if math.IsNaN(rep.Fragility) || rep.Fragility <= 0 {
		t.Fatalf("fragility %v, want positive (perturbations weaken the claim)", rep.Fragility)
	}
}

func TestAssessClaimNormalDBDiscretizes(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping full-width Adoptions assessment in -short mode (~17s)")
	}
	db := cleansel.Adoptions(1)
	orig := cleansel.WindowComparison("orig", 0, 4, 4)
	perturbs := cleansel.SlidingComparisons("cmp", db.N(), 4, 0, 1.5)
	set, err := cleansel.NewPerturbationSet(orig, cleansel.HigherIsStronger, orig.Eval(db.Currents()), perturbs)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := cleansel.AssessClaim(db, set)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BiasVariance <= 0 {
		t.Fatal("bias variance should be positive")
	}
}

func TestRankObjects(t *testing.T) {
	db := crimeDB(t)
	set := crimeSet(t, db)
	for _, m := range []cleansel.Measure{cleansel.Fairness, cleansel.Uniqueness, cleansel.Robustness} {
		ranked, err := cleansel.RankObjects(db, set, m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if len(ranked) != db.N() {
			t.Fatalf("%v: %d entries for %d objects", m, len(ranked), db.N())
		}
		// Sorted by benefit/cost descending.
		for i := 1; i < len(ranked); i++ {
			ra := ranked[i-1].Benefit / ranked[i-1].Cost
			rb := ranked[i].Benefit / ranked[i].Cost
			if rb > ra+1e-12 {
				t.Fatalf("%v: ranking not sorted at %d: %v then %v", m, i, ra, rb)
			}
		}
		// Benefits are non-negative and names are attached.
		for _, o := range ranked {
			if o.Benefit < 0 {
				t.Fatalf("%v: negative benefit %v", m, o.Benefit)
			}
			if o.Name == "" {
				t.Fatalf("%v: missing name", m)
			}
		}
	}
	// The fairness ranking must agree with the greedy's first pick.
	ranked, err := cleansel.RankObjects(db, set, cleansel.Fairness)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cleansel.Select(cleansel.Task{
		DB: db, Claims: set,
		Measure: cleansel.Fairness, Goal: cleansel.MinimizeUncertainty,
		Algorithm: cleansel.AlgoGreedy, Budget: db.Objects[ranked[0].ID].Cost,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Set) == 0 || res.Set[0] != ranked[0].ID {
		t.Fatalf("greedy first pick %v disagrees with top-ranked %d", res.Set, ranked[0].ID)
	}
	if _, err := cleansel.RankObjects(nil, set, cleansel.Fairness); err == nil {
		t.Fatal("nil db accepted")
	}
}

func TestWithDecayCovariance(t *testing.T) {
	db := cleansel.CDCFirearms(1)
	if err := cleansel.WithDecayCovariance(db, 0.6); err != nil {
		t.Fatal(err)
	}
	if db.Cov == nil {
		t.Fatal("covariance not installed")
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	// Correlated fairness selection routes through GreedyDep.
	orig := cleansel.WindowComparison("orig", 0, 4, 4)
	perturbs := cleansel.SlidingComparisons("cmp", db.N(), 4, 0, 1.5)
	set, err := cleansel.NewPerturbationSet(orig, cleansel.HigherIsStronger,
		orig.Eval(db.Currents()), perturbs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cleansel.Select(cleansel.Task{
		DB: db, Claims: set,
		Measure: cleansel.Fairness, Goal: cleansel.MinimizeUncertainty,
		Budget: db.Budget(0.2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.After >= res.Before {
		t.Fatalf("correlated cleaning did not reduce variance: %v -> %v", res.Before, res.After)
	}
	// Correlated + non-fairness measures are rejected.
	if _, err := cleansel.Select(cleansel.Task{
		DB: db, Claims: set,
		Measure: cleansel.Uniqueness, Goal: cleansel.MinimizeUncertainty,
		Budget: 1,
	}); err == nil {
		t.Fatal("correlated uniqueness accepted")
	}
	// Out-of-range gamma rejected.
	if err := cleansel.WithDecayCovariance(db, 1.0); err == nil {
		t.Fatal("gamma=1 accepted")
	}
}

func TestRelationalFacade(t *testing.T) {
	db := cleansel.NewDB([]cleansel.Object{
		{Name: "a/1", Current: 10, Cost: 1, Value: cleansel.UniformOver([]float64{9, 10, 11})},
		{Name: "a/2", Current: 20, Cost: 1, Value: cleansel.UniformOver([]float64{19, 20, 21})},
		{Name: "b/1", Current: 30, Cost: 1, Value: cleansel.UniformOver([]float64{29, 30, 31})},
	})
	tab, err := cleansel.NewTable("t", db, []cleansel.Row{
		{Dims: map[string]string{"g": "a"}, Ints: map[string]int{"y": 1}, Measure: 0},
		{Dims: map[string]string{"g": "a"}, Ints: map[string]int{"y": 2}, Measure: 1},
		{Dims: map[string]string{"g": "b"}, Ints: map[string]int{"y": 1}, Measure: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	aSum := tab.Sum("a", cleansel.DimEq("g", "a"))
	bSum := tab.Sum("b", cleansel.DimEq("g", "b"))
	diff := cleansel.ClaimDiff("a-b", aSum, bSum)
	if got := diff.Eval(db.Currents()); got != 0 {
		t.Fatalf("diff = %v, want 0", got)
	}
	share := cleansel.ClaimShare("share", aSum, bSum, 0.5)
	if got := share.Eval(db.Currents()); got != 15 {
		t.Fatalf("share = %v, want 15", got)
	}
	one := tab.Sum("y1", cleansel.PredAnd(cleansel.DimEq("g", "a"), cleansel.IntBetween("y", 1, 1)))
	if len(one.Vars()) != 1 {
		t.Fatalf("combined predicate matched %v", one.Vars())
	}
	none := tab.Sum("none", cleansel.PredNot(cleansel.PredOr(cleansel.DimEq("g", "a"), cleansel.DimEq("g", "b"))))
	if len(none.Vars()) != 0 {
		t.Fatalf("negated union matched %v", none.Vars())
	}
}

func TestDatasetsExported(t *testing.T) {
	if cleansel.Adoptions(1).N() != 26 {
		t.Fatal("Adoptions")
	}
	if cleansel.CDCFirearms(1).N() != 17 {
		t.Fatal("CDCFirearms")
	}
	if cleansel.CDCCauses(1).N() != 68 {
		t.Fatal("CDCCauses")
	}
	if cleansel.URx(10, 1).N() != 10 || cleansel.LNx(10, 1).N() != 10 || cleansel.SMx(10, 1).N() != 10 {
		t.Fatal("synthetic")
	}
}

func TestSourceFusionExported(t *testing.T) {
	a, _ := cleansel.NewNormal(10, 2)
	b, _ := cleansel.NewNormal(14, 2)
	f, err := cleansel.FuseNormals([]cleansel.Normal{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if f.Mu != 12 {
		t.Fatalf("fused mean %v", f.Mu)
	}
	m, err := cleansel.Mixture(
		[]*cleansel.Discrete{cleansel.PointMass(0), cleansel.PointMass(10)},
		[]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Mean() != 5 {
		t.Fatalf("mixture mean %v", m.Mean())
	}
}

func TestDistributionConstructors(t *testing.T) {
	if _, err := cleansel.NewDiscrete([]float64{1}, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := cleansel.NewNormal(0, -1); err == nil {
		t.Fatal("negative sigma accepted")
	}
	if cleansel.PointMass(3).Mean() != 3 {
		t.Fatal("point mass")
	}
	if cleansel.NewSet(2, 1)[0] != 1 {
		t.Fatal("NewSet")
	}
	ws := cleansel.WindowSum("w", 0, 2)
	if len(ws.Vars()) != 2 {
		t.Fatal("WindowSum")
	}
	nw := cleansel.NonOverlappingWindows("w", 8, 4, 4, 1)
	if len(nw) != 2 {
		t.Fatal("NonOverlappingWindows")
	}
	sw := cleansel.SlidingWindows("w", 8, 4, 0, 1)
	if len(sw) != 5 {
		t.Fatal("SlidingWindows")
	}
	if cleansel.NewClaim("c", 0, map[int]float64{0: 1}) == nil {
		t.Fatal("NewClaim")
	}
}
