// Jurisdictions shows the relational layer: crime counts per city and
// year live in a table whose SUM aggregates compile to linear claims
// (§3.4 — any SQL aggregation over certain selection conditions is
// linear). The claim under check is Example 1's "neighborhoods have
// become more violent under this administration", and its uniqueness is
// assessed against the same comparison made for every other city.
package main

import (
	"fmt"
	"log"

	cleansel "github.com/factcheck/cleansel"
)

func main() {
	cities := []string{"ashford", "brookfield", "carver", "dunmore"}
	years := []int{2015, 2016, 2017, 2018}
	// Reported counts: every city drifts slightly upward; carver jumps.
	base := map[string]float64{"ashford": 4200, "brookfield": 6100, "carver": 5300, "dunmore": 3900}
	jump := map[string]float64{"ashford": 40, "brookfield": 55, "carver": 260, "dunmore": 35}

	var objs []cleansel.Object
	var rows []cleansel.Row
	for _, city := range cities {
		for yi, year := range years {
			val := base[city] + float64(yi)*jump[city]
			id := len(objs)
			objs = append(objs, cleansel.Object{
				Name:    fmt.Sprintf("%s/%d", city, year),
				Current: val,
				Cost:    1 + float64(3-yi), // older records cost more
				Value:   cleansel.UniformOver([]float64{val - 150, val - 75, val, val + 75, val + 150}),
			})
			rows = append(rows, cleansel.Row{
				Dims:    map[string]string{"city": city},
				Ints:    map[string]int{"year": year},
				Measure: id,
			})
		}
	}
	db := cleansel.NewDB(objs)
	tab, err := cleansel.NewTable("crimes", db, rows)
	if err != nil {
		log.Fatal(err)
	}

	// Claim: "crime in carver rose sharply under the current mayor
	// (2017–18 vs 2015–16)" — a relational window comparison.
	mk := func(city string) *cleansel.Claim {
		late := tab.Sum(city+"-late", cleansel.PredAnd(
			cleansel.DimEq("city", city), cleansel.IntBetween("year", 2017, 2018)))
		early := tab.Sum(city+"-early", cleansel.PredAnd(
			cleansel.DimEq("city", city), cleansel.IntBetween("year", 2015, 2016)))
		return cleansel.ClaimDiff(city+"-rise", late, early)
	}
	orig := mk("carver")
	fmt.Printf("claim: carver crimes rose by %.0f (2017-18 vs 2015-16)\n", orig.Eval(db.Currents()))

	// Perturbations: the identical claim for every city.
	var perturbs []cleansel.Perturbed
	for _, city := range cities {
		perturbs = append(perturbs, cleansel.Perturbed{Claim: mk(city), Sensibility: 1})
	}
	set, err := cleansel.NewPerturbationSet(orig, cleansel.HigherIsStronger,
		orig.Eval(db.Currents()), perturbs)
	if err != nil {
		log.Fatal(err)
	}

	rep, err := cleansel.AssessClaim(db, set)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("at reported values %d/%d cities rose as much; Var[duplicity] = %.3f\n\n",
		rep.Duplicity, rep.Perturbations, rep.DupVariance)

	fmt.Println("which records to audit to pin down uniqueness?")
	for _, frac := range []float64{0.1, 0.25, 0.5} {
		res, err := cleansel.Select(cleansel.Task{
			DB: db, Claims: set,
			Measure: cleansel.Uniqueness, Goal: cleansel.MinimizeUncertainty,
			Algorithm: cleansel.AlgoGreedy, Budget: db.Budget(frac),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  budget %3.0f%%: Var %.3f -> %.3f, audit %v\n",
			frac*100, res.Before, res.After, res.Chosen)
	}
	fmt.Println("\nthe selection concentrates on carver and its nearest rival —")
	fmt.Println("other cities' records barely matter for this claim's uniqueness")
}
