// Cdcinjuries walks the §4.2/§4.5 CDC workloads: checking the uniqueness
// and robustness of "injury counts over the last two years were as low/
// high as Γ" claims against the firearm-injury series, and showing how
// correlated errors change what is worth cleaning (GreedyDep).
package main

import (
	"fmt"
	"log"

	cleansel "github.com/factcheck/cleansel"
)

func main() {
	// --- Uniqueness of "the last two years were as low as Γ".
	db := cleansel.CDCFirearms(42).Discretized(6)
	years := db.N()
	orig := cleansel.WindowSum("last-2y", years-2, 2)
	perturbs := cleansel.NonOverlappingWindows("2y", years, 2, years-2, 1.0)
	gamma := orig.Eval(db.Currents())
	set, err := cleansel.NewPerturbationSet(orig, cleansel.LowerIsStronger, gamma, perturbs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("claim: last two years had %.0f firearm injuries (as low as ever?)\n", gamma)
	for _, frac := range []float64{0.1, 0.3} {
		res, err := cleansel.Select(cleansel.Task{
			DB: db, Claims: set,
			Measure: cleansel.Uniqueness, Goal: cleansel.MinimizeUncertainty,
			Algorithm: cleansel.AlgoGreedy, Budget: db.Budget(frac),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  budget %3.0f%%: Var[duplicity] %.4f -> %.4f, clean %v\n",
			frac*100, res.Before, res.After, res.Chosen)
	}

	// --- Robustness of "the last two years were as high as Γ'".
	setHi, err := cleansel.NewPerturbationSet(orig, cleansel.HigherIsStronger, gamma, perturbs)
	if err != nil {
		log.Fatal(err)
	}
	res, err := cleansel.Select(cleansel.Task{
		DB: db, Claims: setHi,
		Measure: cleansel.Robustness, Goal: cleansel.MinimizeUncertainty,
		Algorithm: cleansel.AlgoBest, Budget: db.Budget(0.2),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrobustness (Best, 20%% budget): Var[fragility] %.3g -> %.3g\n",
		res.Before, res.After)

	// --- Correlated errors (§4.5): neighbouring years' errors co-move.
	raw := cleansel.CDCFirearms(42)
	n := raw.N()
	const rho = 0.7
	if err := cleansel.WithDecayCovariance(raw, rho); err != nil {
		log.Fatal(err)
	}

	origCmp := cleansel.WindowComparison("05-08-vs-01-04", 0, 4, 4)
	spanPerturbs := cleansel.SlidingComparisons("span", n, 4, 0, 1.5)
	setDep, err := cleansel.NewPerturbationSet(origCmp, cleansel.HigherIsStronger,
		origCmp.Eval(raw.Currents()), spanPerturbs)
	if err != nil {
		log.Fatal(err)
	}
	dep, err := cleansel.Select(cleansel.Task{
		DB: raw, Claims: setDep,
		Measure: cleansel.Fairness, Goal: cleansel.MinimizeUncertainty,
		Budget: raw.Budget(0.2),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith γ=%.1f correlated errors, GreedyDep cleans %v\n", rho, dep.Chosen)
	fmt.Printf("true fairness variance %.3g -> %.3g\n", dep.Before, dep.After)
	fmt.Println("(cleaning one year now also shrinks its neighbours' uncertainty,")
	fmt.Println(" so the dependency-aware greedy spreads its budget differently)")
}
