// Crimewave reenacts Example 2 of the paper: the claim "crimes went up by
// more than 300 cases from last year" over five years of uncertain crime
// counts. It shows the full fact-checking loop — assess the claim's
// quality measures, decide what to clean under each objective, and watch
// how the choice differs between "understand the claim" and "counter the
// claim".
package main

import (
	"fmt"
	"log"
	"strings"

	cleansel "github.com/factcheck/cleansel"
)

func main() {
	years := []int{2014, 2015, 2016, 2017, 2018}
	counts := []float64{9010, 9275, 9300, 9125, 9430}

	// Each count may be off by up to 120 cases; cleaning means calling the
	// local agency, and older records cost more effort to verify.
	objs := make([]cleansel.Object, len(counts))
	for i, c := range counts {
		vals := []float64{c - 120, c - 60, c, c + 60, c + 120}
		objs[i] = cleansel.Object{
			Name:    fmt.Sprintf("crimes/%d", years[i]),
			Current: c,
			Cost:    float64(len(counts) - i), // 2014 costs 5, 2018 costs 1
			Value:   cleansel.UniformOver(vals),
		}
	}
	db := cleansel.NewDB(objs)

	// The claim compares 2018 against 2017 and asserts an increase > 300.
	orig := cleansel.WindowComparison("2018-vs-2017", 3, 4, 1)
	// Perturbations: the same year-over-year comparison for earlier years.
	var perturbs []cleansel.Perturbed
	for s := 0; s < 3; s++ {
		perturbs = append(perturbs, cleansel.Perturbed{
			Claim:       cleansel.WindowComparison(fmt.Sprintf("%d-vs-%d", years[s+1], years[s]), s, s+1, 1),
			Sensibility: 1,
		})
	}
	set, err := cleansel.NewPerturbationSet(orig, cleansel.HigherIsStronger, 300, perturbs)
	if err != nil {
		log.Fatal(err)
	}

	rep, err := cleansel.AssessClaim(db, set)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("claim: crimes rose %.0f (asserted: >300)\n", orig.Eval(db.Currents()))
	fmt.Printf("at current values: duplicity %d/%d, bias %+.1f, fragility %.0f\n",
		rep.Duplicity, rep.Perturbations, rep.Bias, rep.Fragility)
	fmt.Printf("uncertainty: Var[duplicity]=%.3f Var[bias]=%.0f\n\n", rep.DupVariance, rep.BiasVariance)

	fmt.Println("budget sweep — which years to clean?")
	fmt.Printf("%-8s %-28s %-28s\n", "budget", "MinVar/uniqueness cleans", "MaxPr/counter cleans")
	for _, budget := range []float64{2, 4, 6, 9} {
		minvar, err := cleansel.Select(cleansel.Task{
			DB: db, Claims: set,
			Measure: cleansel.Uniqueness, Goal: cleansel.MinimizeUncertainty,
			Algorithm: cleansel.AlgoGreedy, Budget: budget,
		})
		if err != nil {
			log.Fatal(err)
		}
		maxpr, err := cleansel.Select(cleansel.Task{
			DB: db, Claims: set,
			Measure: cleansel.Fairness, Goal: cleansel.MaximizeSurprise,
			Budget: budget, Tau: 30, Seed: 7,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8.0f %-28s %-28s\n", budget,
			strings.Join(minvar.Chosen, ", "), strings.Join(maxpr.Chosen, ", "))
	}

	fmt.Println("\nNote how the counter-seeking objective gravitates to 2015: a small")
	fmt.Println("upward revision there makes the 2014->2015 jump rival the claimed one,")
	fmt.Println("exactly the intuition in Example 2 of the paper.")
}
