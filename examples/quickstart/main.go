// Quickstart: a 60-second tour of the cleansel API on a three-value toy
// database — define uncertain values, state a claim with perturbations,
// and ask both of the paper's questions: which values should I clean to
// *understand* the claim (MinVar), and which to *counter* it (MaxPr)?
package main

import (
	"fmt"
	"log"

	cleansel "github.com/factcheck/cleansel"
)

func main() {
	// Three monthly incident counts; the middle one is the least certain.
	db := cleansel.NewDB([]cleansel.Object{
		{Name: "jan", Current: 100, Cost: 1, Value: cleansel.UniformOver([]float64{95, 100, 105})},
		{Name: "feb", Current: 120, Cost: 1, Value: cleansel.UniformOver([]float64{90, 120, 150})},
		{Name: "mar", Current: 140, Cost: 1, Value: cleansel.UniformOver([]float64{130, 140, 150})},
	})

	// Claim: "March had 40 more incidents than January" — is that unique,
	// or would February-based comparisons look just as dramatic?
	orig := cleansel.WindowComparison("mar-vs-jan", 0, 2, 1)
	perturbs := []cleansel.Perturbed{
		{Claim: cleansel.WindowComparison("feb-vs-jan", 0, 1, 1), Sensibility: 1},
		{Claim: cleansel.WindowComparison("mar-vs-feb", 1, 2, 1), Sensibility: 1},
	}
	set, err := cleansel.NewPerturbationSet(orig, cleansel.HigherIsStronger,
		orig.Eval(db.Currents()), perturbs)
	if err != nil {
		log.Fatal(err)
	}

	report, err := cleansel.AssessClaim(db, set)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("claim value: %.0f   bias: %+.1f   duplicity: %d/%d   fragility: %.1f\n",
		orig.Eval(db.Currents()), report.Bias, report.Duplicity, report.Perturbations, report.Fragility)
	fmt.Printf("uncertainty — bias: %.1f   duplicity: %.3f\n\n",
		report.BiasVariance, report.DupVariance)

	// Goal 1 (MinVar): spend budget 1 to pin down the claim's uniqueness.
	res, err := cleansel.Select(cleansel.Task{
		DB: db, Claims: set,
		Measure: cleansel.Uniqueness, Goal: cleansel.MinimizeUncertainty,
		Algorithm: cleansel.AlgoGreedy, Budget: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MinVar  (ascertain quality): clean %v — duplicity variance %.3f -> %.3f\n",
		res.Chosen, res.Before, res.After)

	// Goal 2 (MaxPr): spend budget 1 to maximize the chance of a counter.
	res, err = cleansel.Select(cleansel.Task{
		DB: db, Claims: set,
		Measure: cleansel.Fairness, Goal: cleansel.MaximizeSurprise,
		Budget: 1, Tau: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MaxPr   (find a counter):    clean %v — counter probability %.3f\n",
		res.Chosen, res.After)
	fmt.Println("\nThe two goals can pick different values — that is the paper's point.")
}
