// Giuliani reproduces the §4.1 fairness workflow on the Adoptions
// dataset: the window-aggregate-comparison claim "adoptions went up 65–70
// percent" (1996–2001 vs 1990–1995), 18 span perturbations with
// exponentially decaying sensibility, and a comparison of the selection
// algorithms at several budgets — the workload behind Figure 1(a).
package main

import (
	"fmt"
	"log"

	cleansel "github.com/factcheck/cleansel"
)

func main() {
	db := cleansel.Adoptions(42)

	// Original claim: compare the back-to-back 4-year windows starting at
	// 1989 (index 0). Perturbations slide the whole 8-year span.
	orig := cleansel.WindowComparison("1993-96-vs-1989-92", 0, 4, 4)
	all := cleansel.SlidingComparisons("span", db.N(), 4, 0, 1.5)
	var perturbs []cleansel.Perturbed
	for _, p := range all {
		if p.Distance > 0 {
			perturbs = append(perturbs, p)
		}
	}
	set, err := cleansel.NewPerturbationSet(orig, cleansel.HigherIsStronger,
		orig.Eval(db.Currents()), perturbs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("claim result at current values: %+.0f adoptions; %d perturbations\n\n",
		orig.Eval(db.Currents()), set.M())

	fmt.Printf("%-10s %-14s %-14s %-14s\n", "budget", "Naive", "GreedyMinVar", "Optimum")
	for _, frac := range []float64{0.05, 0.1, 0.2, 0.4} {
		row := []string{}
		for _, algo := range []cleansel.Algorithm{cleansel.AlgoNaive, cleansel.AlgoGreedy, cleansel.AlgoOptimum} {
			res, err := cleansel.Select(cleansel.Task{
				DB: db, Claims: set,
				Measure: cleansel.Fairness, Goal: cleansel.MinimizeUncertainty,
				Algorithm: algo, Budget: db.Budget(frac),
			})
			if err != nil {
				log.Fatal(err)
			}
			row = append(row, fmt.Sprintf("%.1f", res.After))
		}
		fmt.Printf("%-10.2f %-14s %-14s %-14s\n", frac, row[0], row[1], row[2])
	}
	fmt.Println("\n(remaining variance in the fairness measure; lower is better —")
	fmt.Println(" GreedyMinVar tracks the knapsack Optimum, the naive ranking lags)")

	// Where does the first money go?
	res, err := cleansel.Select(cleansel.Task{
		DB: db, Claims: set,
		Measure: cleansel.Fairness, Goal: cleansel.MinimizeUncertainty,
		Algorithm: cleansel.AlgoGreedy, Budget: db.Budget(0.05),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith 5%% of the budget GreedyMinVar cleans: %v\n", res.Chosen)
	fmt.Printf("fairness variance drops %.0f -> %.0f (factor %.1f)\n",
		res.Before, res.After, res.Before/res.After)
}
