// Benchmarks regenerating every figure/experiment of the paper at reduced
// (Small) scale, plus ablations of the design choices called out in
// DESIGN.md. Run the full-scale experiments with cmd/repro -scale paper.
package cleansel_test

import (
	"fmt"
	"runtime"
	"testing"

	cleansel "github.com/factcheck/cleansel"
	"github.com/factcheck/cleansel/internal/claims"
	"github.com/factcheck/cleansel/internal/core"
	"github.com/factcheck/cleansel/internal/datasets"
	"github.com/factcheck/cleansel/internal/ev"
	"github.com/factcheck/cleansel/internal/expt"
	"github.com/factcheck/cleansel/internal/knapsack"
	"github.com/factcheck/cleansel/internal/maxpr"
	"github.com/factcheck/cleansel/internal/model"
	"github.com/factcheck/cleansel/internal/parallel"
	"github.com/factcheck/cleansel/internal/query"
	"github.com/factcheck/cleansel/internal/rng"
)

// benchExperiment runs one registered experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := expt.Run(id, expt.Small, 42); err != nil {
			b.Fatal(err)
		}
	}
}

// --- One bench per paper artifact -------------------------------------------

func BenchmarkFig01(b *testing.B)    { benchExperiment(b, "fig1") }  // Fig 1(a–d): fairness, modular
func BenchmarkFig02(b *testing.B)    { benchExperiment(b, "fig2") }  // Fig 2(a,b): uniqueness, CDC
func BenchmarkFig03(b *testing.B)    { benchExperiment(b, "fig3") }  // Fig 3(a–f): uniqueness, URx
func BenchmarkFig04(b *testing.B)    { benchExperiment(b, "fig4") }  // Fig 4(a–f): uniqueness, LNx
func BenchmarkFig05(b *testing.B)    { benchExperiment(b, "fig5") }  // Fig 5(a–f): uniqueness, SMx
func BenchmarkFig06(b *testing.B)    { benchExperiment(b, "fig6") }  // Fig 6(a,b): improvement curves
func BenchmarkFig07(b *testing.B)    { benchExperiment(b, "fig7") }  // Fig 7(a,b): robustness
func BenchmarkFig08(b *testing.B)    { benchExperiment(b, "fig8") }  // Fig 8(a,b): in action, CDC-causes
func BenchmarkFig09(b *testing.B)    { benchExperiment(b, "fig9") }  // Fig 9(a,b): in action, URx
func BenchmarkFig10(b *testing.B)    { benchExperiment(b, "fig10") } // Fig 10(a,b): running time
func BenchmarkFig11(b *testing.B)    { benchExperiment(b, "fig11") } // Fig 11(a,b): dependencies
func BenchmarkFig12(b *testing.B)    { benchExperiment(b, "fig12") } // Fig 12(a,b): competing objectives
func BenchmarkCounters(b *testing.B) { benchExperiment(b, "counters") }
func BenchmarkThm39(b *testing.B)    { benchExperiment(b, "thm39") }

// --- Ablations ----------------------------------------------------------------

// uniqWorkload builds a small uniqueness workload shared by the ablations.
func uniqWorkload(n int) (*model.DB, *query.GroupSum) {
	db := datasets.URx(n, 7)
	w := expt.SyntheticUniquenessFromDB(db, 100)
	return db, w.Set.Dup()
}

// BenchmarkAblationGroupEV measures the Theorem 3.8 group engine against
// joint enumeration on an instance small enough for both (8 objects).
func BenchmarkAblationGroupEV(b *testing.B) {
	db, g := uniqWorkload(8)
	engine, err := ev.NewGroupEngine(db, g)
	if err != nil {
		b.Fatal(err)
	}
	T := model.NewSet(0, 5)
	b.Run("group", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			engine.EV(T)
		}
	})
	bf, err := ev.NewBruteForce(db, g)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("bruteforce", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bf.EV(T)
		}
	})
}

// BenchmarkAblationLazyGreedy compares the local-invalidation queue
// greedy (GreedyMinVarGroup) against the O(n²) adaptive greedy re-scan.
func BenchmarkAblationLazyGreedy(b *testing.B) {
	db, g := uniqWorkload(200)
	budget := db.Budget(0.3)
	b.Run("queue", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sel, err := core.NewGreedyMinVarGroup(db, g)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sel.Select(budget); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rescan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			engine, err := ev.NewGroupEngine(db, g)
			if err != nil {
				b.Fatal(err)
			}
			sel, err := core.NewGreedyEngine("GreedyMinVar", db, engine)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sel.Select(budget); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationSingletonBulk compares the bulk one-pass-per-term
// initial benefit computation against per-object Delta calls.
func BenchmarkAblationSingletonBulk(b *testing.B) {
	db, g := uniqWorkload(400)
	engine, err := ev.NewGroupEngine(db, g)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("bulk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			st := engine.NewState()
			st.SingletonBenefits()
		}
	})
	b.Run("perobject", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			st := engine.NewState()
			for o := 0; o < db.N(); o++ {
				st.Delta(o)
			}
		}
	})
}

// BenchmarkAblationConvVsMC compares exact convolution against Monte
// Carlo for the MaxPr objective.
func BenchmarkAblationConvVsMC(b *testing.B) {
	db, _ := uniqWorkload(24)
	w := expt.SyntheticUniquenessFromDB(db, 100)
	bias := w.Set.Bias()
	T := model.NewSet(0, 1, 2, 3, 4, 5)
	exact, err := maxpr.NewDiscreteAffine(db, bias, 1, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("convolution", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := exact.ProbErr(T); err != nil {
				b.Fatal(err)
			}
		}
	})
	mc, err := maxpr.NewMonteCarlo(db, bias, 1, 10000, rng.New(3))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("montecarlo10k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mc.Prob(T)
		}
	})
}

// BenchmarkAblationFinalCheck measures Algorithm 1's final best-single-
// item check on the §3.1 adversarial instance family, reporting the
// quality ratio it rescues.
func BenchmarkAblationFinalCheck(b *testing.B) {
	values := []float64{0.1, 10}
	costs := []float64{0.0001, 2}
	var withCheck, densityOnly float64
	for i := 0; i < b.N; i++ {
		res, err := knapsack.Greedy(values, costs, 2)
		if err != nil {
			b.Fatal(err)
		}
		withCheck = res.Value
		densityOnly = 0.1 // what pure density greedy would keep
	}
	if b.N > 0 {
		b.ReportMetric(withCheck/densityOnly, "quality-ratio")
	}
}

// BenchmarkAblationEVCache measures the per-term mask memoization that
// makes Best/OPT affordable: repeated EV calls over related subsets.
func BenchmarkAblationEVCache(b *testing.B) {
	db, g := uniqWorkload(40)
	sets := make([]model.Set, 0, 40)
	for o := 0; o < db.N(); o++ {
		sets = append(sets, model.NewSet(o))
	}
	b.Run("warm", func(b *testing.B) {
		engine, err := ev.NewGroupEngine(db, g)
		if err != nil {
			b.Fatal(err)
		}
		for _, T := range sets {
			engine.EV(T) // warm the caches
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, T := range sets {
				engine.EV(T)
			}
		}
	})
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			engine, err := ev.NewGroupEngine(db, g)
			if err != nil {
				b.Fatal(err)
			}
			for _, T := range sets {
				engine.EV(T)
			}
		}
	})
}

// BenchmarkSelectFacade measures the end-to-end public API path.
func BenchmarkSelectFacade(b *testing.B) {
	db, _ := uniqWorkload(40)
	w := expt.SyntheticUniquenessFromDB(db, 100)
	for i := 0; i < b.N; i++ {
		engine, err := ev.NewGroupEngine(db, w.Set.Dup())
		if err != nil {
			b.Fatal(err)
		}
		sel, err := core.NewGreedyEngine("greedy", db, engine)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sel.Select(db.Budget(0.25)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Parallel subsystem -------------------------------------------------------

// benchWorkerCounts runs the benchmark body across a worker-count
// curve — CLEANSEL_WORKERS at 1, every power of two up to GOMAXPROCS,
// and GOMAXPROCS itself — the scaling data scripts/bench.sh records:
// the full-width run must beat workers=1 while producing bit-identical
// results (pinned by the bit-identity tests, not re-checked here).
func benchWorkerCounts(b *testing.B, body func(b *testing.B)) {
	b.Helper()
	max := runtime.GOMAXPROCS(0)
	if max == 1 {
		// Single-CPU machine: no speedup to demonstrate, but still
		// exercise the pool so its overhead shows in the comparison.
		max = 2
	}
	counts := []int{1}
	for w := 2; w < max; w *= 2 {
		counts = append(counts, w)
	}
	counts = append(counts, max)
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.Setenv(parallel.EnvWorkers, fmt.Sprint(workers))
			body(b)
		})
	}
}

// wideUniquenessWorkload builds a uniqueness workload whose claim
// windows are wide enough (7-point supports, width-6 windows → 7^6
// enumerations per term) that the per-term passes dominate — the shape
// the parallel GroupEngine paths target.
func wideUniquenessWorkload(n int) (*model.DB, *cleansel.PerturbationSet) {
	db := datasets.URx(n, 7)
	const w = 6
	orig := claims.WindowSum("orig", n-w, w)
	perturbs := claims.NonOverlappingWindows("w", n, w, n-w, 0.5)
	set, err := claims.NewSet(orig, claims.LowerIsStronger, 100, perturbs)
	if err != nil {
		panic(err)
	}
	return db, set
}

// BenchmarkGroupEngineParallel measures the engine-level fan-out: the
// initial state build plus the bulk singleton-benefit pass (the
// per-object enumeration of Theorem 3.8).
func BenchmarkGroupEngineParallel(b *testing.B) {
	db, set := wideUniquenessWorkload(120)
	g := set.Dup()
	benchWorkerCounts(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			engine, err := ev.NewGroupEngine(db, g)
			if err != nil {
				b.Fatal(err)
			}
			st := engine.NewState()
			st.SingletonBenefits()
		}
	})
}

// BenchmarkSelectParallel measures the end-to-end public API under the
// worker pool: a full GreedyMinVar uniqueness solve over the wide
// workload, so the parallel per-term enumeration (state build,
// singleton benefits, EV misses along the greedy picks) dominates and
// the fan-out has real work to amortize the pool overhead against.
// (Solving the narrow disjoint-4-window workload here instead makes
// the per-term passes so cheap that pool overhead shows as a slowdown
// — the 0.78x regression scripts/bench.sh now gates against.)
func BenchmarkSelectParallel(b *testing.B) {
	db, set := wideUniquenessWorkload(120)
	task := cleansel.Task{
		DB:      db,
		Claims:  set,
		Measure: cleansel.Uniqueness,
		Goal:    cleansel.MinimizeUncertainty,
		Budget:  db.Budget(0.25),
	}
	benchWorkerCounts(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cleansel.Select(task); err != nil {
				b.Fatal(err)
			}
		}
	})
}
