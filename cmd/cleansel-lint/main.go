// Command cleansel-lint runs the repo's determinism-contract analyzers
// (internal/analysis) over the given package patterns and exits non-zero
// on findings.
//
//	cleansel-lint ./...
//	cleansel-lint -checks maporder,floateq ./internal/dist
//	cleansel-lint -list
//
// Diagnostics print as file:line:col: [check] message, with paths
// relative to the working directory. Suppress a finding per file with a
// mandatory-reason directive in that file:
//
//	//lint:allow <check> — <reason>
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/factcheck/cleansel/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("cleansel-lint", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	checks := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := fs.Bool("list", false, "list the available checks and exit")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: cleansel-lint [-checks c1,c2] [-list] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.Analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cfg := analysis.Config{Dir: ".", Patterns: patterns}
	if *checks != "" {
		cfg.Checks = strings.Split(*checks, ",")
	}
	diags, err := analysis.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cleansel-lint:", err)
		return 2
	}
	cwd, _ := os.Getwd()
	for _, d := range diags {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				d.Pos.Filename = rel
			}
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "cleansel-lint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
