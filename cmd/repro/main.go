// Command repro regenerates the paper's figures and in-text experiments.
//
// Usage:
//
//	repro -list
//	repro -fig fig1 [-scale small|paper] [-seed 42] [-csv out/]
//	repro -fig all -scale paper
//
// Each experiment prints one ASCII table per figure; -csv additionally
// writes long-format CSV files (one per figure) into the given directory.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/factcheck/cleansel/internal/expt"
)

func main() {
	var (
		figFlag   = flag.String("fig", "", "experiment id (e.g. fig1, fig11, counters, thm39), comma list, or 'all'")
		scaleFlag = flag.String("scale", "small", "experiment scale: small or paper")
		seedFlag  = flag.Uint64("seed", 42, "deterministic seed")
		csvFlag   = flag.String("csv", "", "directory to write per-figure CSV files (optional)")
		listFlag  = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *listFlag {
		for _, id := range expt.IDs() {
			fmt.Println(id)
		}
		return
	}
	if *figFlag == "" {
		fmt.Fprintln(os.Stderr, "repro: -fig is required (or -list); e.g. -fig fig1")
		os.Exit(2)
	}
	scale, err := expt.ParseScale(*scaleFlag)
	if err != nil {
		fatal(err)
	}
	var ids []string
	if *figFlag == "all" {
		ids = expt.IDs()
	} else {
		for _, id := range strings.Split(*figFlag, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}
	if *csvFlag != "" {
		if err := os.MkdirAll(*csvFlag, 0o755); err != nil {
			fatal(err)
		}
	}
	for _, id := range ids {
		figs, err := expt.Run(id, scale, *seedFlag)
		if err != nil {
			fatal(err)
		}
		for _, fig := range figs {
			if err := fig.Render(os.Stdout); err != nil {
				fatal(err)
			}
			fmt.Println()
			if *csvFlag != "" {
				path := filepath.Join(*csvFlag, fig.ID+".csv")
				f, err := os.Create(path)
				if err != nil {
					fatal(err)
				}
				if err := fig.WriteCSV(f); err != nil {
					f.Close()
					fatal(err)
				}
				if err := f.Close(); err != nil {
					fatal(err)
				}
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "repro:", err)
	os.Exit(1)
}
