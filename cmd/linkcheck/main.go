// Command linkcheck verifies the repository's markdown cross-references.
//
// It scans the given markdown files (default: README.md and docs/*.md)
// for inline links and images, and fails when a relative link points at
// a file that does not exist or at a heading anchor that no heading in
// the target file produces. External links (http, https, mailto) are
// not fetched — the tool guards the intra-repo documentation graph, not
// the internet.
//
// Anchors are derived from headings with the GitHub rendering rule:
// lowercase, inline formatting stripped, punctuation removed, spaces
// replaced by hyphens, and duplicate headings suffixed -1, -2, ….
// Links inside fenced code blocks and inline code spans are ignored.
//
// Usage:
//
//	go run ./cmd/linkcheck              # check README.md and docs/*.md
//	go run ./cmd/linkcheck FILE...      # check the named files
//
// Exits 0 when every link resolves, 1 with one line per broken link
// otherwise. Stdlib-only, like the rest of the repository.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

var (
	linkRe   = regexp.MustCompile(`!?\[[^\]\n]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)
	codeRe   = regexp.MustCompile("`[^`\n]*`")
	headRe   = regexp.MustCompile(`^(#{1,6})\s+(.*?)\s*(?:#+\s*)?$`)
	inlineRe = regexp.MustCompile(`\[([^\]\n]*)\]\([^)\n]*\)|[*~` + "`" + `]`)
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: linkcheck [FILE.md ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	files := flag.Args()
	if len(files) == 0 {
		var err error
		files, err = defaultFiles()
		if err != nil {
			fmt.Fprintln(os.Stderr, "linkcheck:", err)
			os.Exit(1)
		}
	}

	broken := 0
	anchors := map[string]map[string]bool{} // file path -> anchor set
	for _, f := range files {
		for _, l := range checkFile(f, anchors) {
			fmt.Fprintln(os.Stderr, l)
			broken++
		}
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "linkcheck: %d broken link(s) in %d file(s)\n", broken, len(files))
		os.Exit(1)
	}
	fmt.Printf("linkcheck: %d file(s) clean\n", len(files))
}

func defaultFiles() ([]string, error) {
	files := []string{"README.md"}
	docs, err := filepath.Glob(filepath.Join("docs", "*.md"))
	if err != nil {
		return nil, err
	}
	sort.Strings(docs)
	return append(files, docs...), nil
}

// checkFile returns one message per broken link in f. The anchors map
// caches heading anchors per target file so each file is parsed once.
func checkFile(f string, anchors map[string]map[string]bool) []string {
	data, err := os.ReadFile(f)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v", f, err)}
	}
	var msgs []string
	dir := filepath.Dir(f)
	inFence := false
	for i, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRe.FindAllStringSubmatch(codeRe.ReplaceAllString(line, ""), -1) {
			target := m[1]
			if msg := checkLink(f, dir, target, anchors); msg != "" {
				msgs = append(msgs, fmt.Sprintf("%s:%d: %s", f, i+1, msg))
			}
		}
	}
	return msgs
}

func checkLink(from, dir, target string, anchors map[string]map[string]bool) string {
	if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
		return ""
	}
	path, frag, _ := strings.Cut(target, "#")
	resolved := from
	if path != "" {
		resolved = filepath.Join(dir, path)
		info, err := os.Stat(resolved)
		if err != nil {
			return fmt.Sprintf("broken link %q: no such file", target)
		}
		if info.IsDir() || frag == "" {
			return ""
		}
	}
	if frag == "" {
		return ""
	}
	set, err := headingAnchors(resolved, anchors)
	if err != nil {
		return fmt.Sprintf("broken link %q: %v", target, err)
	}
	if !set[frag] {
		return fmt.Sprintf("broken link %q: no heading renders to #%s", target, frag)
	}
	return ""
}

func headingAnchors(path string, cache map[string]map[string]bool) (map[string]bool, error) {
	if set, ok := cache[path]; ok {
		return set, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	set := map[string]bool{}
	seen := map[string]int{}
	inFence := false
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		m := headRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		a := slugify(m[2])
		if n := seen[a]; n > 0 {
			set[fmt.Sprintf("%s-%d", a, n)] = true
		} else {
			set[a] = true
		}
		seen[a]++
	}
	cache[path] = set
	return set, nil
}

// slugify applies GitHub's heading-to-anchor rule: strip inline
// formatting (keeping link text), lowercase, drop everything but
// letters, digits, hyphens, underscores, and spaces, then turn each
// space into a hyphen.
func slugify(heading string) string {
	heading = inlineRe.ReplaceAllString(heading, "$1")
	var b strings.Builder
	for _, r := range strings.ToLower(heading) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}
