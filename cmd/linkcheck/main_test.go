package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestSlugify(t *testing.T) {
	cases := map[string]string{
		"Shared request vocabulary":              "shared-request-vocabulary",
		"Determinism contract & static analysis": "determinism-contract--static-analysis",
		"`POST /v1/triage`":                      "post-v1triage",
		"Caching, request IDs, and tracing":      "caching-request-ids-and-tracing",
		"[link text](somewhere.md) in a heading": "link-text-in-a-heading",
		"snake_case stays":                       "snake_case-stays",
		"*emphasis* and ~strike~ stripped":       "emphasis-and-strike-stripped",
	}
	for in, want := range cases {
		if got := slugify(in); got != want {
			t.Errorf("slugify(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCheckFile(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "target.md"), strings.Join([]string{
		"# Title",
		"## Repeated",
		"## Repeated",
		"```",
		"## Not A Heading",
		"```",
		"## Error envelope",
	}, "\n"))
	write(t, filepath.Join(dir, "doc.md"), strings.Join([]string{
		"[ok file](target.md)",
		"[ok anchor](target.md#error-envelope)",
		"[ok dup](target.md#repeated-1)",
		"[ok self](#local)",
		"[external](https://example.com/nope)",
		"`[in code span](missing.md)`",
		"```",
		"[in fence](missing.md)",
		"```",
		"## Local",
		"[bad file](missing.md)",
		"[bad anchor](target.md#not-a-heading)",
		"[bad self](#nowhere)",
	}, "\n"))

	msgs := checkFile(filepath.Join(dir, "doc.md"), map[string]map[string]bool{})
	if len(msgs) != 3 {
		t.Fatalf("got %d findings, want 3:\n%s", len(msgs), strings.Join(msgs, "\n"))
	}
	for i, want := range []string{"missing.md", "#not-a-heading", "#nowhere"} {
		if !strings.Contains(msgs[i], want) {
			t.Errorf("finding %d = %q, want mention of %q", i, msgs[i], want)
		}
	}
}
