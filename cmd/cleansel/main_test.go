package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const sampleSpec = `{
  "objects": [
    {"name": "crimes/2016", "current": 9300, "cost": 2,
     "values": [9200, 9300, 9400], "probs": [0.25, 0.5, 0.25]},
    {"name": "crimes/2017", "current": 9125, "cost": 1,
     "values": [9025, 9125, 9225], "probs": [0.25, 0.5, 0.25]},
    {"name": "crimes/2018", "current": 9430, "cost": 1,
     "normal": {"mean": 9430, "sigma": 80}}
  ],
  "claim": {"name": "orig", "coef": {"2": 1, "1": -1}},
  "direction": "higher",
  "reference": 300,
  "perturbations": [
    {"claim": {"name": "p1", "coef": {"1": 1, "0": -1}}, "sensibility": 1},
    {"claim": {"name": "p2", "coef": {"2": 1, "1": -1}}, "sensibility": 1}
  ],
  "measure": "uniqueness",
  "goal": "minvar",
  "algorithm": "greedy",
  "budget": 3
}`

func parseSpec(t *testing.T, raw string) taskSpec {
	t.Helper()
	var spec taskSpec
	dec := json.NewDecoder(strings.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestSolveUniqueness(t *testing.T) {
	out, err := solve(parseSpec(t, sampleSpec))
	if err != nil {
		t.Fatal(err)
	}
	if out.CostSpent > 3 {
		t.Fatalf("over budget: %+v", out)
	}
	if out.Before < out.After {
		t.Fatalf("uncertainty rose: %+v", out)
	}
	if len(out.Chosen) != len(out.IDs) {
		t.Fatalf("names/ids mismatch: %+v", out)
	}
}

func TestSolveMaxPr(t *testing.T) {
	spec := parseSpec(t, sampleSpec)
	spec.Measure = "fairness"
	spec.Goal = "maxpr"
	spec.Tau = 20
	out, err := solve(spec)
	if err != nil {
		t.Fatal(err)
	}
	if out.After < 0 || out.After > 1 {
		t.Fatalf("probability out of range: %+v", out)
	}
}

func TestSolveAlgorithms(t *testing.T) {
	for _, algo := range []string{"greedy", "optimum", "best", "naive", "random", ""} {
		spec := parseSpec(t, sampleSpec)
		spec.Measure = "fairness"
		spec.Algorithm = algo
		if _, err := solve(spec); err != nil {
			t.Fatalf("algorithm %q: %v", algo, err)
		}
	}
}

func TestSolveRejectsBadSpecs(t *testing.T) {
	cases := []func(*taskSpec){
		func(s *taskSpec) { s.Objects[0].Values = nil; s.Objects[0].Probs = nil },
		func(s *taskSpec) { s.Direction = "sideways" },
		func(s *taskSpec) { s.Measure = "vibes" },
		func(s *taskSpec) { s.Goal = "maximin" },
		func(s *taskSpec) { s.Algorithm = "quantum" },
		func(s *taskSpec) { s.Claim.Coef = map[string]float64{"99": 1} },
		func(s *taskSpec) { s.Claim.Coef = map[string]float64{"x": 1} },
		func(s *taskSpec) { s.Perturbations = nil },
	}
	for i, mutate := range cases {
		spec := parseSpec(t, sampleSpec)
		mutate(&spec)
		if _, err := solve(spec); err == nil {
			t.Fatalf("case %d: bad spec accepted", i)
		}
	}
}

func TestSolveDefaultReference(t *testing.T) {
	spec := parseSpec(t, sampleSpec)
	spec.Reference = nil // defaults to the claim value at current values
	if _, err := solve(spec); err != nil {
		t.Fatal(err)
	}
}

func TestSolveLowerDirection(t *testing.T) {
	spec := parseSpec(t, sampleSpec)
	spec.Direction = "lower"
	if _, err := solve(spec); err != nil {
		t.Fatal(err)
	}
}
