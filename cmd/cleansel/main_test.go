package main

import (
	"bytes"
	"strings"
	"testing"

	"github.com/factcheck/cleansel/internal/server/wire"
)

const sampleSpec = `{
  "objects": [
    {"name": "crimes/2016", "current": 9300, "cost": 2,
     "values": [9200, 9300, 9400], "probs": [0.25, 0.5, 0.25]},
    {"name": "crimes/2017", "current": 9125, "cost": 1,
     "values": [9025, 9125, 9225], "probs": [0.25, 0.5, 0.25]},
    {"name": "crimes/2018", "current": 9430, "cost": 1,
     "normal": {"mean": 9430, "sigma": 80}}
  ],
  "claim": {"name": "orig", "coef": {"2": 1, "1": -1}},
  "direction": "higher",
  "reference": 300,
  "perturbations": [
    {"claim": {"name": "p1", "coef": {"1": 1, "0": -1}}, "sensibility": 1},
    {"claim": {"name": "p2", "coef": {"2": 1, "1": -1}}, "sensibility": 1}
  ],
  "measure": "uniqueness",
  "goal": "minvar",
  "algorithm": "greedy",
  "budget": 3
}`

func parseSpec(t *testing.T, raw string) wire.Task {
	t.Helper()
	spec, err := wire.DecodeTask(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestSolveUniqueness(t *testing.T) {
	out, err := solve(parseSpec(t, sampleSpec))
	if err != nil {
		t.Fatal(err)
	}
	if out.CostSpent > 3 {
		t.Fatalf("over budget: %+v", out)
	}
	if out.Before < out.After {
		t.Fatalf("uncertainty rose: %+v", out)
	}
	if len(out.Chosen) != len(out.IDs) {
		t.Fatalf("names/ids mismatch: %+v", out)
	}
}

func TestSolveMaxPr(t *testing.T) {
	spec := parseSpec(t, sampleSpec)
	spec.Measure = "fairness"
	spec.Goal = "maxpr"
	spec.Tau = 20
	out, err := solve(spec)
	if err != nil {
		t.Fatal(err)
	}
	if out.After < 0 || out.After > 1 {
		t.Fatalf("probability out of range: %+v", out)
	}
}

func TestSolveAlgorithms(t *testing.T) {
	for _, algo := range []string{"greedy", "optimum", "best", "naive", "random", ""} {
		spec := parseSpec(t, sampleSpec)
		spec.Measure = "fairness"
		spec.Algorithm = algo
		if _, err := solve(spec); err != nil {
			t.Fatalf("algorithm %q: %v", algo, err)
		}
	}
}

func TestSolveRejectsBadSpecs(t *testing.T) {
	cases := []func(*wire.Task){
		func(s *wire.Task) { s.Objects[0].Values = nil; s.Objects[0].Probs = nil },
		func(s *wire.Task) { s.Direction = "sideways" },
		func(s *wire.Task) { s.Measure = "vibes" },
		func(s *wire.Task) { s.Goal = "maximin" },
		func(s *wire.Task) { s.Algorithm = "quantum" },
		func(s *wire.Task) { s.Claim.Coef = map[string]float64{"99": 1} },
		func(s *wire.Task) { s.Claim.Coef = map[string]float64{"x": 1} },
		func(s *wire.Task) { s.Perturbations = nil },
		func(s *wire.Task) { s.DatasetID = "ds_deadbeef" },
	}
	for i, mutate := range cases {
		spec := parseSpec(t, sampleSpec)
		mutate(&spec)
		if _, err := solve(spec); err == nil {
			t.Fatalf("case %d: bad spec accepted", i)
		}
	}
}

func TestSolveDefaultReference(t *testing.T) {
	spec := parseSpec(t, sampleSpec)
	spec.Reference = nil // defaults to the claim value at current values
	if _, err := solve(spec); err != nil {
		t.Fatal(err)
	}
}

func TestSolveLowerDirection(t *testing.T) {
	spec := parseSpec(t, sampleSpec)
	spec.Direction = "lower"
	if _, err := solve(spec); err != nil {
		t.Fatal(err)
	}
}

func TestRunSolvesSpecFromStdin(t *testing.T) {
	var out, errs bytes.Buffer
	if code := run(nil, strings.NewReader(sampleSpec), &out, &errs); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errs.String())
	}
	for _, want := range []string{`"chosen"`, `"ids"`, `"cost_spent"`, `"objective_before"`, `"objective_after"`} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %s:\n%s", want, out.String())
		}
	}
}

func TestRunFlagAndInputHygiene(t *testing.T) {
	cases := []struct {
		name  string
		args  []string
		stdin string
		code  int
	}{
		{"unknown flag", []string{"-frobnicate"}, sampleSpec, 2},
		{"positional arg", []string{"spec.json"}, sampleSpec, 2},
		{"malformed json", nil, `{"objects": [`, 2},
		{"unknown field", nil, `{"objects": [], "wat": 1}`, 2},
		{"missing input file", []string{"-in", "/does/not/exist.json"}, "", 1},
		{"invalid problem", nil, `{"objects": [], "claim": {"name": "c", "coef": {}}, "perturbations": [], "budget": 1}`, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errs bytes.Buffer
			code := run(tc.args, strings.NewReader(tc.stdin), &out, &errs)
			if code != tc.code {
				t.Fatalf("exit %d, want %d (stderr: %s)", code, tc.code, errs.String())
			}
			if out.Len() != 0 {
				t.Fatalf("partial output emitted: %s", out.String())
			}
			if errs.Len() == 0 {
				t.Fatal("no diagnostic on stderr")
			}
		})
	}
}
