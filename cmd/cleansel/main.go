// Command cleansel solves ad-hoc cleaning-selection problems from a JSON
// specification on stdin (or -in file) and reports the chosen values as
// JSON on stdout. The specification format is the cleanseld select wire
// format (internal/server/wire), minus dataset references.
//
// Example specification:
//
//	{
//	  "objects": [
//	    {"name": "crimes/2017", "current": 9125, "cost": 1,
//	     "values": [9025, 9125, 9225], "probs": [0.25, 0.5, 0.25]},
//	    {"name": "crimes/2018", "current": 9430, "cost": 1,
//	     "normal": {"mean": 9430, "sigma": 80}}
//	  ],
//	  "claim":  {"name": "orig", "coef": {"1": 1, "0": -1}},
//	  "direction": "higher",
//	  "reference": 300,
//	  "perturbations": [
//	    {"claim": {"name": "p1", "coef": {"0": 1}}, "sensibility": 1}
//	  ],
//	  "measure": "uniqueness",
//	  "goal": "minvar",
//	  "algorithm": "greedy",
//	  "budget": 1.5,
//	  "tau": 10
//	}
//
// Normal value models are discretized (6 points) when a discrete engine
// is required; "discretize" overrides the point count.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	cleansel "github.com/factcheck/cleansel"
	"github.com/factcheck/cleansel/internal/server/wire"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cleansel", flag.ContinueOnError)
	fs.SetOutput(stderr)
	inFlag := fs.String("in", "-", "input file (default stdin)")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: cleansel [-in spec.json] < spec.json")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2 // flag package already printed the usage message
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "cleansel: unexpected argument %q\n", fs.Arg(0))
		fs.Usage()
		return 2
	}

	r := stdin
	if *inFlag != "-" {
		f, err := os.Open(*inFlag)
		if err != nil {
			fmt.Fprintln(stderr, "cleansel:", err)
			return 1
		}
		defer f.Close()
		r = f
	}
	spec, err := wire.DecodeTask(r)
	if err != nil {
		fmt.Fprintln(stderr, "cleansel:", err)
		fs.Usage()
		return 2
	}
	res, err := solve(spec)
	if err != nil {
		fmt.Fprintln(stderr, "cleansel:", err)
		return 1
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		fmt.Fprintln(stderr, "cleansel:", err)
		return 1
	}
	return 0
}

// solve maps the wire task onto the cleansel API and runs the selection.
func solve(spec wire.Task) (wire.Result, error) {
	if spec.DatasetID != "" {
		return wire.Result{}, errors.New("dataset_id requires the cleanseld service; inline the objects instead")
	}
	db, err := wire.BuildDB(spec.Objects)
	if err != nil {
		return wire.Result{}, err
	}
	task, err := spec.BuildTask(db)
	if err != nil {
		return wire.Result{}, err
	}
	res, err := cleansel.Select(task)
	if err != nil {
		return wire.Result{}, err
	}
	return wire.EncodeResult(res), nil
}
