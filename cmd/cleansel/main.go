// Command cleansel solves ad-hoc cleaning-selection problems from a JSON
// specification on stdin (or -in file) and reports the chosen values as
// JSON on stdout.
//
// Example specification:
//
//	{
//	  "objects": [
//	    {"name": "crimes/2017", "current": 9125, "cost": 1,
//	     "values": [9025, 9125, 9225], "probs": [0.25, 0.5, 0.25]},
//	    {"name": "crimes/2018", "current": 9430, "cost": 1,
//	     "normal": {"mean": 9430, "sigma": 80}}
//	  ],
//	  "claim":  {"name": "orig", "coef": {"1": 1, "0": -1}},
//	  "direction": "higher",
//	  "reference": 300,
//	  "perturbations": [
//	    {"claim": {"name": "p1", "coef": {"0": 1}}, "sensibility": 1}
//	  ],
//	  "measure": "uniqueness",
//	  "goal": "minvar",
//	  "algorithm": "greedy",
//	  "budget": 1.5,
//	  "tau": 10
//	}
//
// Normal value models are discretized (6 points) when a discrete engine
// is required.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	cleansel "github.com/factcheck/cleansel"
)

type objectSpec struct {
	Name    string    `json:"name"`
	Current float64   `json:"current"`
	Cost    float64   `json:"cost"`
	Values  []float64 `json:"values,omitempty"`
	Probs   []float64 `json:"probs,omitempty"`
	Normal  *normSpec `json:"normal,omitempty"`
}

type normSpec struct {
	Mean  float64 `json:"mean"`
	Sigma float64 `json:"sigma"`
}

type claimSpec struct {
	Name  string             `json:"name"`
	Const float64            `json:"const,omitempty"`
	Coef  map[string]float64 `json:"coef"`
}

type perturbSpec struct {
	Claim       claimSpec `json:"claim"`
	Sensibility float64   `json:"sensibility"`
}

type taskSpec struct {
	Objects       []objectSpec  `json:"objects"`
	Claim         claimSpec     `json:"claim"`
	Direction     string        `json:"direction"` // "higher" or "lower"
	Reference     *float64      `json:"reference,omitempty"`
	Perturbations []perturbSpec `json:"perturbations"`
	Measure       string        `json:"measure"`   // fairness|uniqueness|robustness
	Goal          string        `json:"goal"`      // minvar|maxpr
	Algorithm     string        `json:"algorithm"` // greedy|optimum|best|naive|random
	Budget        float64       `json:"budget"`
	Tau           float64       `json:"tau,omitempty"`
	Seed          uint64        `json:"seed,omitempty"`
	Discretize    int           `json:"discretize,omitempty"`
}

type output struct {
	Chosen    []string `json:"chosen"`
	IDs       []int    `json:"ids"`
	CostSpent float64  `json:"cost_spent"`
	Before    float64  `json:"objective_before"`
	After     float64  `json:"objective_after"`
}

func main() {
	inFlag := flag.String("in", "-", "input file (default stdin)")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *inFlag != "-" {
		f, err := os.Open(*inFlag)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	var spec taskSpec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		fatal(fmt.Errorf("parsing spec: %w", err))
	}
	res, err := solve(spec)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		fatal(err)
	}
}

func solve(spec taskSpec) (*output, error) {
	objs := make([]cleansel.Object, len(spec.Objects))
	needDiscrete := strings.EqualFold(spec.Measure, "uniqueness") || strings.EqualFold(spec.Measure, "robustness")
	k := spec.Discretize
	if k <= 0 {
		k = 6
	}
	for i, o := range spec.Objects {
		obj := cleansel.Object{Name: o.Name, Current: o.Current, Cost: o.Cost}
		switch {
		case o.Normal != nil:
			n, err := cleansel.NewNormal(o.Normal.Mean, o.Normal.Sigma)
			if err != nil {
				return nil, fmt.Errorf("object %q: %w", o.Name, err)
			}
			obj.Value = n
		case len(o.Values) > 0:
			d, err := cleansel.NewDiscrete(o.Values, o.Probs)
			if err != nil {
				return nil, fmt.Errorf("object %q: %w", o.Name, err)
			}
			obj.Value = d
		default:
			return nil, fmt.Errorf("object %q: need values/probs or normal", o.Name)
		}
		objs[i] = obj
	}
	db := cleansel.NewDB(objs)
	if needDiscrete {
		db = db.Discretized(k)
	}

	orig, err := buildClaim(spec.Claim, db.N())
	if err != nil {
		return nil, err
	}
	dir := cleansel.HigherIsStronger
	switch strings.ToLower(spec.Direction) {
	case "higher", "":
	case "lower":
		dir = cleansel.LowerIsStronger
	default:
		return nil, fmt.Errorf("unknown direction %q", spec.Direction)
	}
	ref := orig.Eval(db.Currents())
	if spec.Reference != nil {
		ref = *spec.Reference
	}
	perturbs := make([]cleansel.Perturbed, len(spec.Perturbations))
	for i, p := range spec.Perturbations {
		cl, err := buildClaim(p.Claim, db.N())
		if err != nil {
			return nil, err
		}
		perturbs[i] = cleansel.Perturbed{Claim: cl, Sensibility: p.Sensibility}
	}
	set, err := cleansel.NewPerturbationSet(orig, dir, ref, perturbs)
	if err != nil {
		return nil, err
	}

	task := cleansel.Task{
		DB: db, Claims: set, Budget: spec.Budget, Tau: spec.Tau, Seed: spec.Seed,
	}
	switch strings.ToLower(spec.Measure) {
	case "fairness", "":
		task.Measure = cleansel.Fairness
	case "uniqueness":
		task.Measure = cleansel.Uniqueness
	case "robustness":
		task.Measure = cleansel.Robustness
	default:
		return nil, fmt.Errorf("unknown measure %q", spec.Measure)
	}
	switch strings.ToLower(spec.Goal) {
	case "minvar", "":
		task.Goal = cleansel.MinimizeUncertainty
	case "maxpr":
		task.Goal = cleansel.MaximizeSurprise
	default:
		return nil, fmt.Errorf("unknown goal %q", spec.Goal)
	}
	switch strings.ToLower(spec.Algorithm) {
	case "greedy", "":
		task.Algorithm = cleansel.AlgoGreedy
	case "optimum":
		task.Algorithm = cleansel.AlgoOptimum
	case "best":
		task.Algorithm = cleansel.AlgoBest
	case "naive":
		task.Algorithm = cleansel.AlgoNaive
	case "random":
		task.Algorithm = cleansel.AlgoRandom
	default:
		return nil, fmt.Errorf("unknown algorithm %q", spec.Algorithm)
	}
	res, err := cleansel.Select(task)
	if err != nil {
		return nil, err
	}
	return &output{
		Chosen:    res.Chosen,
		IDs:       res.Set,
		CostSpent: res.CostSpent,
		Before:    res.Before,
		After:     res.After,
	}, nil
}

func buildClaim(spec claimSpec, n int) (*cleansel.Claim, error) {
	coef := make(map[int]float64, len(spec.Coef))
	for key, v := range spec.Coef {
		id, err := strconv.Atoi(key)
		if err != nil || id < 0 || id >= n {
			return nil, fmt.Errorf("claim %q: bad object id %q", spec.Name, key)
		}
		coef[id] = v
	}
	return cleansel.NewClaim(spec.Name, spec.Const, coef), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cleansel:", err)
	os.Exit(1)
}
