// Command cleanseld serves the cleansel selection API over HTTP/JSON.
//
// Endpoints (see internal/server for the wire format):
//
//	POST /v1/datasets      upload a dataset once, get a content-addressed ID
//	GET  /v1/datasets/{id} dataset metadata
//	POST /v1/select        solve a selection task (MinVar/MaxPr)
//	POST /v1/rank          benefit-per-cost ranking of every object
//	POST /v1/assess        claim-quality report (bias/duplicity/fragility)
//	POST /v1/sessions      open an interactive cleaning session (adaptive loop)
//	GET  /v1/sessions/{id} session state and current recommendation
//	POST /v1/sessions/{id}/clean  report one cleaned value, advance the session
//	DELETE /v1/sessions/{id}      end a session early
//	GET  /healthz          liveness and cache/session statistics
//	GET  /metrics          Prometheus text-format metrics
//
// A quickstart against the examples/quickstart dataset:
//
//	cleanseld -addr 127.0.0.1:8080 &
//	curl -X POST --data @examples/quickstart/dataset.json http://127.0.0.1:8080/v1/datasets
//	curl -X POST --data @examples/quickstart/select.json  http://127.0.0.1:8080/v1/select
//
// Repeated identical select/rank/assess requests are answered from an
// LRU result cache (X-Cache: hit), bounded in entries (-cache) and
// bytes (-cache-bytes); identical requests arriving while the first
// still computes join that solve (X-Cache: coalesced), and timed-out
// solves are cancelled rather than left running. -addr-file writes the
// bound address (useful with -addr :0) for scripts that need the
// chosen port.
//
// State is in-memory by default and lost on restart. -data-dir makes
// uploaded datasets durable (content-hash-named files, atomic writes,
// lazy reload), and -cache-snapshot persists the result cache
// periodically (-cache-snapshot-every) and on graceful shutdown, so a
// restarted daemon resumes with its datasets and warm cache. Damaged
// state on disk is skipped and counted on /healthz, never fatal.
//
// Interactive sessions serve the paper's adaptive loop statefully:
// create one with a problem, goal, tau, and budget; follow its
// recommendation; report each cleaned value back; repeat until the
// claim is countered or the budget runs out. Idle sessions expire
// after -session-ttl, at most -session-cap are live at once (least
// recently used evicted beyond that), and -session-snapshot persists
// them across restarts.
//
// Observability: GET /metrics serves request, cache, pool, and solve-
// stage metrics in Prometheus text format. Every response carries an
// X-Request-ID (propagated from the request when present and valid,
// generated otherwise) that also appears in access logs and error
// bodies; appending ?trace=1 to a select/rank/assess request wraps the
// result in an envelope with per-stage timings and engine op counts.
// -debug-addr starts net/http/pprof on a separate listener — bind it
// to localhost only.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/factcheck/cleansel/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

func run(args []string, errw *os.File) int {
	fs := flag.NewFlagSet("cleanseld", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		addr        = fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
		addrFile    = fs.String("addr-file", "", "write the bound address to this file once listening")
		timeout     = fs.Duration("timeout", 30*time.Second, "per-request compute timeout (timed-out solves are cancelled)")
		cacheSize   = fs.Int("cache", 1024, "result cache capacity in entries (negative disables)")
		cacheBytes  = fs.Int64("cache-bytes", 0, "result cache capacity in encoded-response bytes (0 = unbounded)")
		maxDatasets = fs.Int("max-datasets", 64, "dataset store capacity in entries")
		maxDSBytes  = fs.Int64("max-dataset-bytes", 0, "dataset store capacity in bytes of canonical upload encoding (0 = unbounded)")
		maxBody     = fs.Int64("max-body", 8<<20, "maximum request body bytes")
		maxInflight = fs.Int("max-inflight", 0, "concurrent solver cap (0 = GOMAXPROCS)")
		logJSON     = fs.Bool("log-json", false, "emit JSON logs instead of text")
		dataDir     = fs.String("data-dir", "", "directory for durable dataset storage (empty = in-memory only)")
		cacheSnap   = fs.String("cache-snapshot", "", "file the result cache is snapshotted to and restored from (empty = no snapshots)")
		snapEvery   = fs.Duration("cache-snapshot-every", time.Minute, "period between result-cache snapshots (with -cache-snapshot)")
		debugAddr   = fs.String("debug-addr", "", "listen address for the pprof debug server (empty = disabled; keep it off public interfaces)")
		sessionTTL  = fs.Duration("session-ttl", 30*time.Minute, "idle lifetime of an interactive session (negative = never expire)")
		sessionCap  = fs.Int("session-cap", 256, "maximum live interactive sessions (least recently used evicted beyond)")
		sessionSnap = fs.String("session-snapshot", "", "file live sessions are snapshotted to and restored from (empty = in-memory only)")
	)
	fs.Usage = func() {
		fmt.Fprintln(errw, "usage: cleanseld [flags]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2 // flag package already printed the usage message
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(errw, "cleanseld: unexpected argument %q\n", fs.Arg(0))
		fs.Usage()
		return 2
	}

	var handler slog.Handler = slog.NewTextHandler(errw, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(errw, nil)
	}
	logger := slog.New(handler)

	srv, err := server.New(server.Config{
		Logger:             logger,
		Timeout:            *timeout,
		CacheSize:          *cacheSize,
		CacheBytes:         *cacheBytes,
		MaxDatasets:        *maxDatasets,
		MaxDatasetBytes:    *maxDSBytes,
		MaxBodyBytes:       *maxBody,
		MaxInflight:        *maxInflight,
		DataDir:            *dataDir,
		CacheSnapshot:      *cacheSnap,
		CacheSnapshotEvery: *snapEvery,
		SessionTTL:         *sessionTTL,
		SessionCap:         *sessionCap,
		SessionSnapshot:    *sessionSnap,
	})
	if err != nil {
		logger.Error("initializing durable state", "err", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen", "addr", *addr, "err", err)
		return 1
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound), 0o644); err != nil {
			logger.Error("writing addr-file", "path", *addrFile, "err", err)
			return 1
		}
	}
	logger.Info("listening", "addr", bound)

	// The pprof surface gets its own listener so profiling can be bound
	// to localhost while the API listens publicly, and so a profiler
	// hammering /debug/pprof/profile never counts against the API's
	// access logs or request metrics.
	if *debugAddr != "" {
		debugLn, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			logger.Error("listen (debug)", "addr", *debugAddr, "err", err)
			return 1
		}
		debugMux := http.NewServeMux()
		debugMux.HandleFunc("/debug/pprof/", pprof.Index)
		debugMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		debugMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		debugMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		debugMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		debugSrv := &http.Server{Handler: debugMux, ReadHeaderTimeout: 10 * time.Second}
		defer debugSrv.Close()
		go func() {
			if err := debugSrv.Serve(debugLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug serve", "err", err)
			}
		}()
		logger.Info("debug listening", "addr", debugLn.Addr().String())
	}

	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-stop:
		logger.Info("shutting down", "signal", sig.String())
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			logger.Error("shutdown", "err", err)
			srv.Close()
			return 1
		}
		// In-flight requests are drained; flush the final cache
		// snapshot so the restarted daemon comes back warm.
		srv.Close()
		return 0
	case err := <-done:
		srv.Close()
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("serve", "err", err)
			return 1
		}
		return 0
	}
}
